// SiteServer: one HyperFile server node (paper Sections 3.2 and 4).
//
// Each site keeps a *local context* for every query it is processing:
//   Q.id, Q.originator  — globally unique query identity
//   Q.body, Q.size      — the filters (carried by every message; installed
//                         on first sight, so per-site setup cost is paid
//                         exactly once — "the context Q is discarded only on
//                         global termination")
//   Q.mark_table, Q.W   — per-site engine state (engine/execution.hpp)
//   Q.result            — results batched since the last drain
//
// Message handling:
//   * DerefRequest  — install context if new, enqueue (id, start, iter#),
//     drain, then send accumulated results + all held termination weight
//     straight to the originator (results never flow along pointer paths).
//   * StartQuery    — like DerefRequest but seeds several ids and/or this
//     site's local portion of a named set (distributed-set continuation).
//   * ClientRequest — this site becomes the query's *originating site*: it
//     seeds the initial set, holds the master termination weight, collects
//     results, detects global termination (weighted-message algorithm),
//     binds the result set, replies to the client, and broadcasts QueryDone
//     so contexts are discarded everywhere.
//   * ResultMessage — (originator only) merge results, recover weight.
//   * QueryDone     — discard the local context.
//
// During a drain, dereferences of non-local objects become DerefRequests
// sent to the target's presumed site with a borrowed share of our weight.
// If a send fails (site down / channel closed), the weight is repaid and the
// item dropped: the query still terminates with partial results, honoring
// the paper's "partial results are better than none at all".
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "common/trace.hpp"
#include "engine/execution.hpp"
#include "engine/parallel_execution.hpp"
#include "index/site_summary.hpp"
#include "dist/replication.hpp"
#include "naming/name_registry.hpp"
#include "net/endpoint.hpp"
#include "store/site_store.hpp"
#include "store/versioning.hpp"
#include "store/wal.hpp"
#include "term/weighted.hpp"

namespace hyperfile {

/// Which distributed-termination detector the deployment runs. All sites of
/// a deployment must agree. The paper chose weighted messages as
/// "particularly appropriate to HyperFile" (Section 4); Dijkstra-Scholten is
/// provided as the classic alternative — it needs no weight fields but adds
/// one acknowledgement message per computation message.
enum class TerminationAlgorithm {
  kWeightedMessages,
  kDijkstraScholten,
};

struct SiteServerOptions {
  WorkSetDiscipline discipline = WorkSetDiscipline::kFifo;
  TerminationAlgorithm termination = TerminationAlgorithm::kWeightedMessages;
  /// How long the event loop blocks waiting for a message.
  Duration poll_interval = Duration(2'000);
  /// Buffer a drain's remote dereferences per destination and ship them as
  /// one BatchDerefRequest each (ablation A5). Off by default: the paper's
  /// one-message-per-pointer protocol starts remote work earlier.
  bool batch_remote_derefs = false;
  /// Run rewrite_query() on client queries before originating them — the
  /// simplified body is what every subsequent message carries.
  bool rewrite_queries = true;
  /// Shared-memory parallelism inside the site (paper Section 6 applied to
  /// the distributed runtime). 0 = serial: every drain runs on the event-
  /// loop thread. N > 0: a pool of N long-lived workers per site, created
  /// once and shared across query contexts; drains fan object processing
  /// out to the pool and join before any result or weight is flushed. The
  /// event loop keeps exclusive ownership of message handling, store
  /// writes, and termination accounting either way.
  std::size_t drain_workers = 0;
  /// Run the frozen pre-optimization drain (engine/legacy_drain.hpp) instead
  /// of the current engine. Exists so bench_parallel_site can measure the
  /// old-vs-new curves from the same binary and so differential tests can
  /// compare result sets; never set in production configs.
  bool legacy_drain = false;
  /// Extra attempts after a failed send of a protocol message (derefs,
  /// results, acks, replies). Retries target *detected* transient failures
  /// — a dead connection the transport can re-establish; silent loss is
  /// invisible to the sender and is covered by context_ttl instead.
  /// Receivers suppress duplicates by msg_seq, so a retry that raced a
  /// slow-but-successful delivery is harmless.
  int send_retries = 2;
  /// Sleep before the first retry; doubles per attempt.
  Duration retry_backoff = Duration(200);
  /// Self-healing: a query context (participant or origination) idle longer
  /// than this is presumed orphaned — its QueryDone was lost, its weight
  /// was dropped, or the client went away. Originations force-finish with a
  /// `partial` reply; participant contexts re-flush anything pending and
  /// are then discarded. Keeps "partial results, never a hang" true under
  /// message loss.
  Duration context_ttl = Duration(10'000'000);
  /// Durability (DESIGN.md §13). Empty = volatile site (the default). When
  /// set, the server keeps `<wal_dir>/site_<id>.wal` (every store mutation,
  /// redo-logged before it is acknowledged) and `<wal_dir>/site_<id>.ckpt`
  /// (the latest checkpoint). Construction *recovers*: if either file
  /// exists, the checkpoint + replayed WAL supersede the store passed to
  /// the constructor — which is what lets a crashed site restart with its
  /// data intact (Cluster::restart_site hands in an empty store on purpose).
  std::string wal_dir;
  /// With wal_dir set and an interval > 0, the event loop periodically
  /// snapshots the store to the checkpoint file and truncates the WAL,
  /// bounding recovery time. 0 = only explicit checkpoint() calls.
  Duration checkpoint_interval = Duration(0);
  /// Failure detection (DESIGN.md §13). 0 = disabled. When set, the server
  /// tracks per-peer last-seen times (every received envelope is an implicit
  /// heartbeat), probes quiet peers of interest with PingMessage after a
  /// third of the window, and *suspects* a peer silent for the full window.
  /// Suspecting a participant force-finishes the originator's query as
  /// `partial` right away — within this window instead of the much larger
  /// context_ttl — and new work routes around the suspect until it is seen
  /// alive again. Keep this comfortably above the longest expected drain:
  /// the event loop cannot answer pings mid-drain, so an aggressive window
  /// turns a slow site into a falsely suspected one.
  Duration suspect_after = Duration(0);
  /// Site-summary exchange + remote fan-out pruning (DESIGN.md §16).
  /// 0 = disabled. When set, the site rebuilds its SiteSummary (a Bloom
  /// filter over everything it stores, index/site_summary.hpp) whenever the
  /// store has mutated, advertises it to `summary_peers` on this cadence,
  /// and — before forwarding a dereference — tests the query against the
  /// cached summary of the destination, skipping sites that provably cannot
  /// contribute. Pruning is conservative: a missing, expired, or
  /// version-regressed summary never prunes, so results stay exact.
  Duration summary_interval = Duration(0);
  /// A cached peer summary older than this never prunes (it may still be
  /// *replaced* by any incoming record, even a version-regressed one — an
  /// expired cache entry carries no authority). 0 = never expires.
  Duration summary_ttl = Duration(0);
  /// Sites this server advertises its summary to. Cluster fills this with
  /// the whole deployment when summaries are enabled and the list is empty.
  std::vector<SiteId> summary_peers;
  /// Relay cached peer records alongside our own record (epidemic spread on
  /// sparse topologies). Receivers order gossiped records by their embedded
  /// (epoch, version) and never treat them as liveness evidence for their
  /// origin — only the frame's direct sender proved itself alive.
  bool summary_gossip = true;
  /// WAL-shipped hot-standby replication (DESIGN.md §18, dist/replication.hpp).
  /// 0 = disabled. When set, this site ships its WAL tail to its assigned
  /// follower on this cadence, (re)subscribes to the primaries it follows,
  /// and — when the failure detector suspects a primary — fails dereference
  /// work over to that primary's replica instead of dropping it. Requires
  /// suspect_after > 0 for the failover half, and wal_dir on primaries for
  /// the shipping half (a volatile site can follow, but has no WAL to ship).
  Duration replication_interval = Duration(0);
  /// Per-WalSegment budget of framed WAL bytes (always at least one whole
  /// record, see read_wal_segment).
  std::uint64_t replication_segment_bytes = 256 * 1024;
  /// Deployment-wide replica assignment: primary site -> follower site.
  /// Every site carries the whole map — routers need it to redirect work at
  /// a suspect's replica, not just the pairs they are part of. Cluster
  /// fills it ring-wise (site i -> site i+1) when replication is enabled
  /// and the map is empty.
  std::unordered_map<SiteId, SiteId> replica_assignment;
};

/// Per-sender advert dedup state: the highest (incarnation epoch, msg_seq)
/// pair already processed from that sender (see SiteServer::summary_seen_).
struct SummaryAdvertHighWater {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};

class SiteServer {
 public:
  SiteServer(std::unique_ptr<MessageEndpoint> endpoint, SiteStore store,
             SiteServerOptions options = {});
  ~SiteServer();

  SiteServer(const SiteServer&) = delete;
  SiteServer& operator=(const SiteServer&) = delete;

  SiteId site() const { return store_.site(); }

  /// Pre-start population access. Not thread-safe once start()ed.
  SiteStore& store() { return store_; }
  NameRegistry& names() { return names_; }

  HF_ANY_THREAD void start();
  HF_ANY_THREAD void stop();
  bool running() const { return running_.load(); }

  /// Run `fn` with exclusive ownership of the loop-confined state (store_,
  /// contexts_, names_): inline when the server is stopped, otherwise
  /// enqueued onto the event loop and waited for. This is how online
  /// snapshots and checkpoints happen "under the store lock" — the lock
  /// being the loop confinement itself (DESIGN.md §9/§13).
  HF_ANY_THREAD HF_BLOCKING Result<void> run_exclusive(
      const std::function<Result<void>()>& fn);

  /// Snapshot the store to the checkpoint file and truncate the WAL. Safe
  /// on a live server (routed through run_exclusive). Error if the server
  /// has no wal_dir.
  HF_ANY_THREAD HF_BLOCKING Result<void> checkpoint();

  /// Aggregated engine statistics across all queries this site processed.
  HF_ANY_THREAD EngineStats engine_stats() const;

  /// Number of live query contexts (for tests: must drop to 0 after
  /// QueryDone).
  HF_ANY_THREAD std::size_t context_count() const;

  /// Number of peer summaries currently cached (for tests and benches:
  /// summary convergence means every site caches every other site's
  /// summary). Snapshot refreshed once per loop tick, like context_count().
  HF_ANY_THREAD std::size_t summary_count() const;

  /// Follower-side replication probe (tests/benches, DESIGN.md §18): this
  /// site's shadow of `primary` — watermark position, the exact-vs-lagged
  /// verdict a failover would render right now, and a copy of the shadow
  /// store for differential comparison against the primary. Routed through
  /// run_exclusive, so safe on a live server. `exists` is false when this
  /// site holds no shadow for `primary` (not its follower, or no segment
  /// arrived yet).
  struct ReplicaProbe {
    bool exists = false;
    std::uint64_t ship_epoch = 0;
    std::uint64_t wal_offset = 0;
    bool covers_tail = false;
    SiteStore shadow{kNoSite};
  };
  HF_ANY_THREAD HF_BLOCKING ReplicaProbe replica_probe(SiteId primary);

  /// The primary-side mirror (tests/benches): a consistent copy of this
  /// site's own store, taken inside the event loop.
  HF_ANY_THREAD HF_BLOCKING SiteStore store_copy();

 private:
  struct Participation {
    /// Serial QueryExecution, or ParallelExecution when drain_workers > 0.
    std::unique_ptr<SiteExecution> exec;
    /// Failover executions over shadow stores (DESIGN.md §18), one per
    /// suspected primary this site answered for during the query, created
    /// lazily by shadow_execution(). Always serial: the failover path
    /// favours correctness over drain parallelism. Declared after `exec`
    /// (destroyed first) because their remote sinks feed it.
    std::unordered_map<SiteId, std::unique_ptr<SiteExecution>> shadow_execs;
    /// Idle test across the main and all shadow executions — termination
    /// (maybe_finish, D-S settling, TTL sweeps) must not fire while any
    /// failover drain still holds work.
    bool executions_idle() const {
      if (!exec->idle()) return false;
      for (const auto& [primary, se] : shadow_execs) {
        if (!se->idle()) return false;
      }
      return true;
    }
    WeightedTerminationParticipant weight;
    /// count_only: ids retained locally instead of shipped.
    std::vector<ObjectId> retained;
    /// (id, start) pairs already forwarded for objects absent here —
    /// prevents forwarding ping-pong when location records are stale.
    std::set<std::pair<ObjectId, std::uint32_t>> forwarded;
    /// With batch_remote_derefs: dereferences buffered per destination
    /// during the current drain, flushed as one message each.
    std::unordered_map<SiteId, std::vector<wire::DerefEntry>> pending_batches;
    /// Duplicate suppression: msg_seq values already processed, per sender.
    /// A replayed message must not repay weight / add items a second time.
    std::unordered_map<SiteId, std::unordered_set<std::uint64_t>> seen;
    /// Results whose send to the originator failed even after retries;
    /// stashed (with their weight back in `weight`) and re-flushed by the
    /// TTL sweep or the next drain.
    std::vector<ObjectId> pending_ids;
    std::vector<wire::RetrievedValue> pending_values;
    std::uint64_t pending_count = 0;
    /// Work items this site knows it lost (undeliverable derefs); reported
    /// to the originator as ResultMessage::dropped_items.
    std::uint64_t dropped = 0;
    std::chrono::steady_clock::time_point last_activity;

    /// This site's cumulative trace span for the query (common/trace.hpp);
    /// piggybacked on every ResultMessage to the originator.
    TraceSpan span;
    /// Hop number of the most recent engaging message; dereferences
    /// forwarded from here carry current_hop + 1.
    std::uint32_t current_hop = 0;
    /// Path stamped on outgoing computation messages: the engaging
    /// message's path extended with this site (capped at
    /// TraceSpan::kMaxPath).
    std::vector<SiteId> out_path;

    // --- Dijkstra-Scholten state (termination == kDijkstraScholten) ---
    bool ds_engaged = false;      // on the engagement tree?
    SiteId ds_parent = kNoSite;   // whose message engaged us
    std::uint64_t ds_deficit = 0; // our unacknowledged computation messages
  };

  struct Origination {
    Query query;
    WeightedTerminationOriginator term;
    SiteId client = kNoSite;
    QuerySeq client_seq = 0;
    std::unordered_set<ObjectId> ids_seen;
    std::vector<ObjectId> ids;
    std::vector<wire::RetrievedValue> values;
    std::uint64_t total_count = 0;
    std::unordered_map<SiteId, std::uint64_t> site_counts;  // count_only mode
    std::unordered_set<SiteId> involved;  // sites we heard from / sent to
    /// Duplicate suppression for ResultMessages, per sender (see
    /// Participation::seen).
    std::unordered_map<SiteId, std::unordered_set<std::uint64_t>> seen;
    /// Known losses: items this originator dropped plus every
    /// ResultMessage::dropped_items reported by participants. Nonzero =>
    /// the reply is flagged partial.
    std::uint64_t dropped_items = 0;
    std::chrono::steady_clock::time_point last_activity;
    bool replied = false;
    /// Participant span snapshots, merged field-wise by max so a
    /// duplicate-suppressed redelivery cannot double-record
    /// (common/trace.hpp). The originator's own span joins at reply time.
    std::unordered_map<SiteId, TraceSpan> spans;
    /// Request arrival on this site's clock; the reply's elapsed_us.
    std::chrono::steady_clock::time_point started;
  };

  /// Last-seen bookkeeping for one peer (liveness, DESIGN.md §13).
  struct PeerLiveness {
    std::chrono::steady_clock::time_point last_seen;
    std::chrono::steady_clock::time_point last_ping;
    bool suspected = false;
    /// A send to this peer failed loudly even after retries (dead fd,
    /// closed mailbox). Recorded by send_with_retry; the next
    /// check_liveness pass converts it into a suspicion without waiting
    /// out the silence window. Cleared by any received frame.
    bool send_failed = false;
  };

  /// One cached peer summary plus the staleness clock summary_ttl runs
  /// against. `installed` is *origin-anchored*: arrival time minus the
  /// record's wire-carried age, so a record relayed through many hops is
  /// exactly as stale here as at the site that heard the origin directly.
  struct CachedSummary {
    index::SiteSummary summary;
    std::chrono::steady_clock::time_point installed;
  };

  HF_EVENT_LOOP_ONLY void run_loop();
  /// How long the next recv may block on a wake-capable endpoint: the time
  /// until the earliest periodic duty (sweep, liveness, summaries,
  /// checkpoint, replication) falls due, capped at a bounded idle maximum.
  /// Frame arrival and wake_recv() cut the wait short either way.
  HF_EVENT_LOOP_ONLY Duration recv_budget() const;
  /// Crash recovery + WAL attach (constructor, when wal_dir is set).
  void recover_durable_state();
  /// Checkpoint on the loop thread (or pre-start): snapshot to a temp file,
  /// atomically rename over the checkpoint, truncate the WAL.
  HF_EVENT_LOOP_ONLY Result<void> do_checkpoint();
  /// Execute queued run_exclusive closures (loop thread, or stop() after
  /// the join so no caller is left blocked).
  HF_EVENT_LOOP_ONLY void drain_ctl();
  /// Periodic failure detection: ping quiet peers of interest, suspect the
  /// silent ones, force-finish their queries as partial.
  HF_EVENT_LOOP_ONLY void check_liveness();
  HF_EVENT_LOOP_ONLY void suspect_peer(SiteId peer);
  bool peer_suspected(SiteId peer) const {
    auto it = liveness_.find(peer);
    return it != liveness_.end() && it->second.suspected;
  }
  HF_EVENT_LOOP_ONLY void handle(wire::Envelope env);
  HF_EVENT_LOOP_ONLY void handle_deref(SiteId src, wire::DerefRequest dr);
  HF_EVENT_LOOP_ONLY void handle_batch_deref(SiteId src,
                                              wire::BatchDerefRequest bd);
  HF_EVENT_LOOP_ONLY void handle_start(SiteId src, wire::StartQuery sq);
  HF_EVENT_LOOP_ONLY void handle_result(SiteId src, wire::ResultMessage rm);
  HF_EVENT_LOOP_ONLY void handle_client_request(SiteId src,
                                                wire::ClientRequest cr);
  HF_EVENT_LOOP_ONLY void handle_done(const wire::QueryDone& qd);
  /// The qid names a query *we* originated that is no longer live: a
  /// duplicated or retried message outlived its query. Heal the sender by
  /// (re)telling it the query is done; never recreate a context.
  HF_EVENT_LOOP_ONLY bool stale_own_query(const wire::QueryId& qid,
                                           SiteId src);
  HF_EVENT_LOOP_ONLY void handle_move_command(SiteId src,
                                               const wire::MoveCommand& mc);
  HF_EVENT_LOOP_ONLY void handle_move_data(wire::MoveData md);
  HF_EVENT_LOOP_ONLY void handle_location_update(
      const wire::LocationUpdate& lu);
  /// Install gossiped summary records: each record is accepted iff its
  /// (epoch, version) is strictly newer than the cached one for that origin
  /// (or the cached one has aged past summary_ttl). Never touches liveness —
  /// a gossiped record is hearsay about its origin, not a frame from it.
  HF_EVENT_LOOP_ONLY void handle_summary(SiteId src, wire::SummaryMessage sm);
  /// The install side effect of handle_summary, factored out so the
  /// hfverify ordering rule sees it by name (allowlist SIDE_EFFECT_CALLS):
  /// it must never run before the handler's dedup guard.
  HF_EVENT_LOOP_ONLY void install_summary(
      wire::SummaryRecord rec, std::chrono::steady_clock::time_point now);
  /// Periodic summary maintenance (run_loop, summary_interval > 0): rebuild
  /// our own summary when the store has mutated since the last build, and
  /// advertise it (plus gossiped peer records) to summary_peers.
  HF_EVENT_LOOP_ONLY void check_summaries();
  /// True iff `dest`'s cached summary is fresh and proves the item
  /// (entering `query` at `start` on object `oid`) cannot contribute.
  /// Missing/expired summaries return false: staleness never prunes.
  HF_EVENT_LOOP_ONLY bool summary_prunes(SiteId dest, const Query& query,
                                          std::uint32_t start,
                                          const ObjectId& oid);

  // --- WAL replication (replication_interval > 0, DESIGN.md §18) ---
  /// The assigned follower of `primary`, or kNoSite.
  SiteId replica_for(SiteId primary) const {
    auto it = options_.replica_assignment.find(primary);
    return it == options_.replica_assignment.end() ? kNoSite : it->second;
  }
  /// The shadow-store slot for a primary this site follows; created lazily,
  /// nullptr when the assignment does not name us as `primary`'s follower.
  HF_EVENT_LOOP_ONLY ReplicaTail* replica_slot(SiteId primary);
  /// Periodic replication pass (run_loop): re-subscribe to quiet primaries
  /// we follow, ship WAL tails (or catchup snapshots) to our followers.
  HF_EVENT_LOOP_ONLY void check_replication();
  HF_EVENT_LOOP_ONLY void ship_to(SiteId follower, FollowerShip& ship);
  /// Fire-and-forget WalSubscribe carrying `rt`'s current watermark.
  HF_EVENT_LOOP_ONLY void send_subscribe(SiteId primary, ReplicaTail& rt);
  /// Primary side: (re)aim the follower's ship cursor. Idempotent by
  /// design — subscribes travel unsequenced and may be re-sent freely.
  HF_EVENT_LOOP_ONLY void handle_wal_subscribe(SiteId src,
                                                wire::WalSubscribe ws);
  HF_EVENT_LOOP_ONLY void handle_wal_segment(SiteId src, wire::WalSegment wg);
  HF_EVENT_LOOP_ONLY void handle_wal_catchup(SiteId src, wire::WalCatchup wc);
  /// The apply side effects of the two handlers above, factored out (like
  /// install_summary) so the hfverify ordering rule sees them by name: they
  /// must never run before the handler's dedup guard. Both take unpacked
  /// fields, not the message structs, so the rule does not demand a second
  /// guard inside them.
  HF_EVENT_LOOP_ONLY void apply_segment(SiteId primary,
                                        std::uint64_t ship_epoch,
                                        std::uint64_t from_offset,
                                        std::uint64_t end_offset,
                                        std::vector<wire::Bytes> records);
  HF_EVENT_LOOP_ONLY void apply_catchup(SiteId primary,
                                        std::uint64_t ship_epoch,
                                        std::uint64_t wal_offset,
                                        wire::Bytes snapshot);
  /// The failover execution serving `primary`'s shadow store for this
  /// query; created on first use. Requires replicas_.at(primary) to exist.
  HF_EVENT_LOOP_ONLY SiteExecution& shadow_execution(const wire::QueryId& qid,
                                                     Participation& p,
                                                     SiteId primary);

  Participation& participation(const wire::QueryId& qid, const Query& query);
  Origination* find_origination(const wire::QueryId& qid);
  /// Drain the context's working set, then flush: results+weight to the
  /// originator (participants) or merged into the origination (originator).
  HF_EVENT_LOOP_ONLY void drain_and_flush(const wire::QueryId& qid);
  /// `force` (TTL expiry): reply now with whatever arrived, flagged partial,
  /// instead of waiting for termination that can no longer happen.
  HF_EVENT_LOOP_ONLY void maybe_finish(const wire::QueryId& qid,
                                        Origination& o, bool force = false);
  HF_EVENT_LOOP_ONLY void discard_context(const wire::QueryId& qid);
  /// Periodic self-healing pass (run_loop): force-finish expired
  /// originations, re-flush participants with stashed results, discard
  /// idle-expired participant contexts.
  HF_EVENT_LOOP_ONLY void sweep_contexts();
  /// Send with bounded retry + exponential backoff on transient failures
  /// (kNotFound/kInvalidArgument are permanent and not retried). Retries are
  /// attributed to `span` when the send belongs to a traced query.
  HF_EVENT_LOOP_ONLY Result<void> send_with_retry(
      SiteId to, const wire::Message& m,
                               TraceSpan* span = nullptr);

  /// Trace bookkeeping for an accepted computation message: count it,
  /// adopt (hop, path) as the span's engagement if it is the earliest seen,
  /// and refresh the hop/path stamped on outgoing messages.
  HF_EVENT_LOOP_ONLY void note_engagement(Participation& p,
                                           std::uint32_t hop,
                                           const std::vector<SiteId>& path);

  /// Route `item` to a remote site as a DerefRequest: destination is the
  /// id's presumed site, or the name registry's next hop when the hint
  /// points here. Borrows termination weight for the message; repays and
  /// drops the item if no destination exists or the send fails. With
  /// batching enabled the item is buffered instead (see flush_batches).
  HF_EVENT_LOOP_ONLY void route_remote(const wire::QueryId& qid,
                                        Participation& p, WorkItem item);
  HF_EVENT_LOOP_ONLY void flush_batches(const wire::QueryId& qid,
                                         Participation& p);

  /// Borrow / repay weight for qid: from the master weight if we originated
  /// it, else from the participant's held weight. No-ops under D-S.
  HF_EVENT_LOOP_ONLY Weight borrow_weight(const wire::QueryId& qid,
                                           Participation& p);
  HF_EVENT_LOOP_ONLY void repay_weight(const wire::QueryId& qid,
                                        Participation& p, Weight w);

  bool using_ds() const {
    return options_.termination == TerminationAlgorithm::kDijkstraScholten;
  }
  /// D-S bookkeeping: a computation message (deref/batch/start/result)
  /// arrived from `src` — engage or ack immediately.
  HF_EVENT_LOOP_ONLY void ds_on_computation_message(
      const wire::QueryId& qid, Participation& p, SiteId src);
  /// D-S: we successfully sent a computation message.
  void ds_on_send(Participation& p) {
    if (using_ds()) ++p.ds_deficit;
  }
  HF_EVENT_LOOP_ONLY void handle_term_ack(SiteId src,
                                           const wire::TermAck& ta);
  /// D-S: idle + zero deficit -> ack our engaging message (participants) or
  /// finish the query (originator).
  HF_EVENT_LOOP_ONLY void ds_try_settle(const wire::QueryId& qid,
                                         Participation& p);

  std::unique_ptr<MessageEndpoint> endpoint_;
  SiteStore store_;
  NameRegistry names_;
  SiteServerOptions options_;
  /// The site's redo log (wal_dir set). unique_ptr so the address the store
  /// shadows into stays stable. Loop-confined like the store it mirrors.
  std::unique_ptr<WriteAheadLog> wal_;
  /// Long-lived drain workers (drain_workers > 0), shared by every query
  /// context this site ever processes. Declared before contexts_ so any
  /// execution still alive at destruction outlives its pool references.
  std::unique_ptr<WorkerPool> drain_pool_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread thread_;

  // Event-loop-thread-confined state (DESIGN.md §9/§10): only run_loop()'s
  // thread touches these while the server runs; start()/stop() join the
  // thread before any other access. Deliberately *not* mutex-guarded — the
  // confinement is the discipline, and stats_mu_ below is the only state
  // crossing threads.
  QuerySeq next_query_seq_ HF_EVENT_LOOP_ONLY = 1;
  /// One outgoing sequence stream for all sequenced messages this site
  /// sends; receivers dedup by (qid, src, msg_seq). Starts at 1 — seq 0
  /// marks unsequenced messages, which are never suppressed.
  std::uint64_t next_msg_seq_ HF_EVENT_LOOP_ONLY = 1;
  std::chrono::steady_clock::time_point last_sweep_;
  std::chrono::steady_clock::time_point last_checkpoint_;
  std::chrono::steady_clock::time_point last_liveness_check_;
  std::unordered_map<wire::QueryId, Participation, wire::QueryIdHash>
      contexts_ HF_EVENT_LOOP_ONLY;
  std::unordered_map<wire::QueryId, Origination, wire::QueryIdHash>
      originated_ HF_EVENT_LOOP_ONLY;
  /// Result sets of count_only queries: name -> sites holding portions.
  std::unordered_map<std::string, std::vector<SiteId>>
      distributed_sets_ HF_EVENT_LOOP_ONLY;
  /// Per-peer liveness clocks (suspect_after > 0). Loop-confined; entries
  /// are created lazily when a peer first becomes of interest.
  std::unordered_map<SiteId, PeerLiveness> liveness_ HF_EVENT_LOOP_ONLY;

  // --- Site-summary exchange (summary_interval > 0, DESIGN.md §16) ---
  /// Our own advertised summary. Rebuilt by check_summaries() whenever
  /// store_.version() has moved past own_summary_.version.
  index::SiteSummary own_summary_ HF_EVENT_LOOP_ONLY;
  bool summary_built_ HF_EVENT_LOOP_ONLY = false;
  /// Incarnation counter baked into every summary we advertise, so a
  /// restarted site's post-crash summaries outrank its pre-crash ones even
  /// though the store version counter restarted. Durable sites recover it
  /// from `<wal_dir>/site_<id>.boot` (incremented each boot, written
  /// write-then-rename); volatile sites stamp each boot with the wall
  /// clock instead — nowhere to persist a counter, and epochs are only
  /// ever compared against this site's own earlier ones.
  std::uint64_t summary_epoch_ = 0;
  std::chrono::steady_clock::time_point last_summary_advert_;
  /// Freshest summary we hold per origin site, however it arrived (direct
  /// advert or gossip). suspect_peer() drops the suspect's entry: a dead
  /// site's summary must not keep pruning after it restarts with new
  /// content.
  std::unordered_map<SiteId, CachedSummary> peer_summaries_ HF_EVENT_LOOP_ONLY;
  /// Duplicate suppression for SummaryMessages: per sender, the highest
  /// (incarnation epoch, msg_seq) processed. Site-level (no query context
  /// to hang it on), so unlike the per-query `seen` sets it lives for the
  /// whole process — a high-water mark instead of a set keeps it O(peers),
  /// not O(peers × uptime). Suppressing a *reordered* older advert along
  /// with true duplicates is sound: adverts are cumulative snapshots sent
  /// in increasing seq order, and installs are ordered by (epoch, version)
  /// with origin-anchored ages, so an older advert carries nothing the
  /// newer one didn't supersede. The mark is epoch-scoped because a
  /// restarted sender's seq counter restarts at 1: without the epoch its
  /// fresh adverts would be suppressed as stale until the counter outgrew
  /// the pre-crash range, leaving any stale gossiped record of it in
  /// authority for that whole window.
  std::unordered_map<SiteId, SummaryAdvertHighWater>
      summary_seen_ HF_EVENT_LOOP_ONLY;

  // --- WAL replication (replication_interval > 0, DESIGN.md §18) ---
  /// Our WAL generation: which checkpoint the byte offsets we ship are
  /// relative to. Persisted in `<wal_dir>/site_<id>.ship` (same
  /// write-then-rename discipline as the summary boot epoch) and bumped on
  /// every boot and every WAL truncation, so a follower can always tell a
  /// stale tail from a live one. Stays 0 on volatile sites — they have no
  /// WAL and never ship.
  std::uint64_t ship_epoch_ = 0;
  /// Primary side: ship cursor per subscribed follower.
  std::unordered_map<SiteId, FollowerShip> followers_ HF_EVENT_LOOP_ONLY;
  /// Follower side: shadow store + watermark per primary we replicate.
  /// unique_ptr for address stability — failover executions hold references
  /// to the shadow SiteStore across map rehashes.
  std::unordered_map<SiteId, std::unique_ptr<ReplicaTail>>
      replicas_ HF_EVENT_LOOP_ONLY;
  /// Duplicate suppression for WalSegment/WalCatchup, one stream per
  /// sending primary. Epoch-scoped high-water like summary_seen_ (and for
  /// the same reason: a rebooted primary restarts msg_seq at 1, but its
  /// persisted ship_epoch is strictly higher). The real gap/duplicate
  /// arbitration is positional — (ship_epoch, from_offset) against the
  /// watermark, in apply_segment — this mark only suppresses transport
  /// retries, and exists so the handler ordering contract (dedup before
  /// side effects, tools/hfverify) holds uniformly.
  std::unordered_map<SiteId, SummaryAdvertHighWater>
      wal_stream_seen_ HF_EVENT_LOOP_ONLY;
  std::chrono::steady_clock::time_point last_replication_;

  /// Guards the cross-thread observer snapshots (engine_stats(),
  /// context_count() — callable from any thread while the loop runs).
  mutable Mutex stats_mu_;
  EngineStats total_stats_ HF_GUARDED_BY(stats_mu_);
  std::size_t context_count_cache_ HF_GUARDED_BY(stats_mu_) = 0;
  std::size_t summary_count_cache_ HF_GUARDED_BY(stats_mu_) = 0;

  /// run_exclusive handoff: closures queued by other threads, drained by
  /// the event loop between messages (the only cross-thread channel into
  /// the loop-confined state).
  struct CtlWaiter {
    Mutex mu;
    CondVar cv;
    bool done HF_GUARDED_BY(mu) = false;
    Result<void> result HF_GUARDED_BY(mu);
  };
  struct CtlTask {
    std::function<Result<void>()> fn;
    std::shared_ptr<CtlWaiter> waiter;
  };
  mutable Mutex ctl_mu_;
  std::vector<CtlTask> ctl_ HF_GUARDED_BY(ctl_mu_);
};

}  // namespace hyperfile
