// WAL-shipped hot-standby replication state (DESIGN.md §18).
//
// Each durable site (the *primary*) streams its write-ahead log to one
// assigned follower site. The follower applies the redo records into a
// *shadow* SiteStore — a byte-faithful replica of the primary's store — and
// tracks how far it has applied as a ReplicationWatermark
// (store/versioning.hpp). When the failure detector suspects the primary,
// dereference work routed at it is served from the shadow instead, so
// queries keep flowing while the site is dead; answers from a shadow whose
// watermark trails the primary's last shipped offset are flagged
// (TraceSpan::replica_lag), and the reply degrades to `partial`.
//
// Protocol (wire/message.hpp):
//   follower --WalSubscribe--> primary   "stream me your WAL; I hold
//                                         (ship_epoch, wal_offset)"
//   primary  --WalSegment--->  follower  batched redo records, the byte
//                                         range [from_offset, end_offset)
//   primary  --WalCatchup--->  follower  full snapshot when tail replay is
//                                         impossible (generation rolled)
//
// The `ship_epoch` is the primary's checkpoint generation: truncating the
// WAL (SiteServer::do_checkpoint) invalidates every shipped byte offset, so
// the epoch is bumped — persisted in a `.ship` sidecar, like the summary
// boot epoch — and followers of the old generation resync via WalCatchup.
// Dedup/gap detection at the follower is positional: a segment applies only
// when its (ship_epoch, from_offset) equals the watermark; anything behind
// is a duplicate (ignored), anything else is a gap (resubscribe). All state
// here is event-loop-confined, exactly like the stores it mirrors.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "common/sync.hpp"
#include "store/site_store.hpp"
#include "store/versioning.hpp"
#include "wire/codec.hpp"

namespace hyperfile {

/// Primary-side ship cursor for one subscribed follower.
struct FollowerShip {
  /// The WAL generation the follower's offsets live in. When it trails the
  /// primary's current generation the follower needs a snapshot, not a tail.
  std::uint64_t ship_epoch = 0;
  /// Byte offset of the next segment to read and ship (read_wal_segment's
  /// `from_offset`).
  std::uint64_t shipped = 0;
  /// Generation mismatch detected: ship a WalCatchup snapshot next tick
  /// instead of a tail segment.
  bool needs_catchup = true;
};

/// Follower-side state for one replicated primary.
struct ReplicaTail {
  explicit ReplicaTail(SiteId primary) : shadow(primary) {}

  /// The replica of the primary's store, rebuilt by WalCatchup snapshots
  /// and advanced record-by-record by WalSegments. Never WAL-attached and
  /// never summarised: it answers for the primary only while the primary is
  /// suspected, and must not be advertised as this site's own content.
  SiteStore shadow;
  /// How far `shadow` has applied (DESIGN.md §18).
  ReplicationWatermark watermark;
  /// The primary's last *known* (ship_epoch, WAL tail) — what
  /// ReplicationWatermark::covers() runs against when deciding whether a
  /// failover answer is exact or lagging. Necessarily trails reality by
  /// anything the primary acknowledged but never shipped.
  ReplicationWatermark primary_tail;
  /// Last segment/catchup arrival — quiet streams trigger a re-subscribe.
  std::chrono::steady_clock::time_point last_heard{};
  /// Last watermark advance; the age of a lagging failover answer.
  std::chrono::steady_clock::time_point last_advance{};
  std::chrono::steady_clock::time_point last_subscribe{};
};

/// Decode and apply one shipped batch of encode_wal_record payloads into
/// `shadow`, in order. Returns how many records were applied; fails on the
/// first payload that does not decode (the shipment is corrupt — the caller
/// resyncs via WalCatchup rather than applying a prefix silently... a
/// prefix *was* applied, which is safe: re-applying from an older snapshot
/// supersedes it, and redo records are idempotent).
HF_EVENT_LOOP_ONLY Result<std::size_t> apply_segment_records(
    SiteStore& shadow, const std::vector<wire::Bytes>& records);

}  // namespace hyperfile
