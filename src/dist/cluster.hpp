// Cluster: an in-process multi-site HyperFile deployment — N SiteServers on
// their own threads plus one client endpoint, wired through an InProcNetwork
// (every message wire-serialized). This is the distributed runtime used by
// integration tests and the examples; the TCP variant (examples/tcp_cluster)
// wires the same SiteServer over sockets.
//
// Usage:
//   Cluster cluster(3);
//   cluster.store(0).put(...); ...          // populate before start()
//   cluster.store(0).create_set("S", ids);
//   cluster.start();
//   auto result = cluster.client().run(query);   // originates at site 0
//
// Thread ownership (DESIGN.md §10): the Cluster object itself is confined
// to the constructing thread — start()/stop()/store()/move_object() are not
// mutually thread-safe. Concurrency lives *inside* the parts: each
// SiteServer runs its own event loop, and the clients may run queries from
// different threads because each Client owns a distinct endpoint.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dist/client.hpp"
#include "dist/site_server.hpp"
#include "net/inproc.hpp"

namespace hyperfile {

class Cluster {
 public:
  /// Wraps a server's endpoint before the SiteServer takes it — the chaos
  /// hook (net/faulty.hpp's FaultInjectingEndpoint is the intended
  /// decorator). Applied to server endpoints only; client endpoints stay
  /// reliable so tests observe the protocol's behaviour, not a flaky
  /// request channel.
  using EndpointDecorator = std::function<std::unique_ptr<MessageEndpoint>(
      SiteId, std::unique_ptr<MessageEndpoint>)>;

  /// `clients` independent client endpoints are created (ids N .. N+C-1);
  /// they may issue queries concurrently from different threads — each
  /// SiteServer multiplexes per-query contexts. Options and decorator are
  /// kept so restart_site() can rebuild a crashed site identically.
  explicit Cluster(std::size_t sites, SiteServerOptions options = {},
                   std::size_t clients = 1, EndpointDecorator decorate = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::size_t size() const { return servers_.size(); }

  /// Population access. Only safe before start() (or for a stopped site).
  SiteStore& store(SiteId site) { return servers_[site]->store(); }
  SiteServer& server(SiteId site) { return *servers_[site]; }

  void start();
  void stop();

  /// Stop a single site (failure injection: the rest of the cluster keeps
  /// answering with partial results). The site's mailbox closes too, so
  /// peers see send failures and repay the termination weight they would
  /// have shipped — queries complete instead of hanging.
  void stop_site(SiteId site) {
    net_.close_endpoint(site);
    servers_[site]->stop();
  }

  /// Crash-stop a site on a *running* cluster (DESIGN.md §13): its mailbox
  /// closes (peers get loud kClosed errors, like a dead TCP fd) and its
  /// event loop stops. Whatever the site had not checkpointed or WAL-logged
  /// is gone — which is the point of the fault model.
  void kill_site(SiteId site) { stop_site(site); }

  /// Bring a killed site back on the running cluster. The server is rebuilt
  /// from an *empty* store with the original options and endpoint decorator:
  /// with SiteServerOptions::wal_dir set it recovers checkpoint + WAL and
  /// loses no acknowledged mutation; without durability it rejoins empty.
  /// Its mailbox reopens discarding pre-crash traffic, and births re-register
  /// from the recovered store. Known limitation: authoritative location
  /// records for objects born here that migrated away die with the crash —
  /// queries chasing them degrade to partial, never hang.
  Result<void> restart_site(SiteId site);

  Client& client(std::size_t index = 0) { return *clients_[index]; }
  std::size_t client_count() const { return clients_.size(); }
  /// The first client's endpoint id (== number of sites).
  SiteId client_site() const { return static_cast<SiteId>(servers_.size()); }

  /// Move an object between sites, updating the name registries (birth-site
  /// authoritative record + departure hint). Only valid while stopped.
  Result<void> move_object(const ObjectId& id, SiteId from, SiteId to);

  /// Persist every site's store as `<dir>/site_<i>.hfs`. Works on a *live*
  /// cluster: each running site snapshots inside its own event loop (via
  /// SiteServer::run_exclusive), so the image is consistent without stopping
  /// anything; stopped sites snapshot directly. The historical stopped-only
  /// restriction is gone.
  Result<void> save_snapshots(const std::string& dir);
  /// Reload every site's store from `<dir>/site_<i>.hfs`. Still requires a
  /// stopped cluster — swapping a store under in-flight queries would tear
  /// results; restart_site() is the supported way to change a live site's
  /// state. A new deployment restored this way answers queries identically.
  Result<void> load_snapshots(const std::string& dir);

  NetworkStats network_stats() const { return net_.stats(); }
  EngineStats engine_stats() const;

 private:
  InProcNetwork net_;
  SiteServerOptions options_;      // kept for restart_site rebuilds
  EndpointDecorator decorate_;     // re-applied to restarted endpoints
  std::vector<std::unique_ptr<SiteServer>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace hyperfile
