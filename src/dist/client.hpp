// Client library: submit a query to an originating server and await the
// reply. Mirrors the paper's experimental client, which "read a query from a
// script, submitted it to HyperFile, received the result, and then went on
// to the next query"; it "ran at a separate machine from any of the servers"
// — here, on its own endpoint id.
//
// Thread ownership (DESIGN.md §10): one Client = one caller thread. The
// request/reply protocol on the single endpoint (and next_seq_) is not
// locked; concurrent querying is done with multiple Clients (Cluster's
// `clients` parameter), never by sharing one.
#pragma once

#include <memory>

#include "engine/query_result.hpp"
#include "net/endpoint.hpp"

namespace hyperfile {

class Client {
 public:
  /// `default_server` is the site queries are submitted to unless overridden.
  Client(std::unique_ptr<MessageEndpoint> endpoint, SiteId default_server)
      : endpoint_(std::move(endpoint)), default_server_(default_server) {}

  /// Run `query` at the default server; blocks until the reply or timeout.
  Result<QueryResult> run(const Query& query,
                          Duration timeout = Duration(30'000'000)) {
    return run_at(default_server_, query, timeout);
  }

  /// Run `query` with an explicit originating site.
  Result<QueryResult> run_at(SiteId server, const Query& query,
                             Duration timeout = Duration(30'000'000));

  /// Migrate an object to another site while the deployment runs. The
  /// command goes to the id's presumed site and chases stale hints; on
  /// success the returned SiteId is the object's new home. Pointers to the
  /// object stay valid throughout (paper Section 4's naming scheme).
  Result<SiteId> move(const ObjectId& id, SiteId to,
                      Duration timeout = Duration(30'000'000));

  SiteId self() const { return endpoint_->self(); }

 private:
  std::unique_ptr<MessageEndpoint> endpoint_;
  SiteId default_server_;
  QuerySeq next_seq_ = 1;
};

}  // namespace hyperfile
