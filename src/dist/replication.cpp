#include "dist/replication.hpp"

#include "store/wal.hpp"

namespace hyperfile {

Result<std::size_t> apply_segment_records(
    SiteStore& shadow, const std::vector<wire::Bytes>& records) {
  std::size_t applied = 0;
  for (const wire::Bytes& payload : records) {
    auto rec = decode_wal_record(payload);
    if (!rec.ok()) {
      return make_error(Errc::kDecode,
                        "WAL segment record " + std::to_string(applied) +
                            " does not decode: " + rec.error().message);
    }
    shadow.apply_wal_record(rec.value());
    ++applied;
  }
  return applied;
}

}  // namespace hyperfile
