#include "dist/client.hpp"

#include <chrono>

namespace hyperfile {

Result<QueryResult> Client::run_at(SiteId server, const Query& query,
                                   Duration timeout) {
  if (auto v = query.validate(); !v.ok()) return v.error();

  const QuerySeq seq = next_seq_++;
  wire::ClientRequest req;
  req.client_seq = seq;
  req.query = query;
  if (auto r = endpoint_->send(server, std::move(req)); !r.ok()) return r.error();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout.count());
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return make_error(Errc::kTimeout, "no reply from site " +
                                            std::to_string(server) +
                                            " within deadline");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
    auto env = endpoint_->recv(Duration(remaining.count()));
    if (!env.has_value()) continue;
    auto* reply = std::get_if<wire::ClientReply>(&env->message);
    if (reply == nullptr) continue;        // stray message: ignore
    if (reply->client_seq != seq) continue;  // reply to an older query

    if (!reply->ok) return make_error(Errc::kInvalidArgument, reply->error);

    QueryResult result;
    result.ids = std::move(reply->ids);
    result.values.reserve(reply->values.size());
    for (auto& v : reply->values) {
      result.values.push_back({v.slot, v.source, std::move(v.value)});
    }
    result.slot_names = query.retrieve_slots();
    result.total_count = reply->total_count;
    result.count_only = reply->count_only;
    result.partial = reply->partial;
    result.dropped_items = reply->dropped_items;
    result.trace.query_id = reply->qid.to_string();
    result.trace.elapsed_us = reply->elapsed_us;
    result.trace.spans = std::move(reply->spans);
    return result;
  }
}

Result<SiteId> Client::move(const ObjectId& id, SiteId to, Duration timeout) {
  const QuerySeq seq = next_seq_++;
  wire::MoveCommand mc;
  mc.client_seq = seq;
  mc.id = id;
  mc.to = to;
  mc.reply_to = endpoint_->self();
  const SiteId first_stop =
      id.presumed_site != kNoSite ? id.presumed_site : id.birth_site;
  if (auto r = endpoint_->send(first_stop, mc); !r.ok()) return r.error();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout.count());
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return make_error(Errc::kTimeout, "no move reply within deadline");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
    auto env = endpoint_->recv(Duration(remaining.count()));
    if (!env.has_value()) continue;
    auto* reply = std::get_if<wire::MoveReply>(&env->message);
    if (reply == nullptr || reply->client_seq != seq) continue;
    if (!reply->ok) return make_error(Errc::kNotFound, reply->error);
    return reply->now_at;
  }
}

}  // namespace hyperfile
