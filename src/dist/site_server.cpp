#include "dist/site_server.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "engine/legacy_drain.hpp"
#include "query/rewrite.hpp"
#include "store/snapshot.hpp"

namespace hyperfile {
namespace {

/// Record (src, seq) in the per-context dedup map; true iff the message was
/// already processed. seq 0 marks an unsequenced message and is never
/// suppressed.
bool already_seen(
    std::unordered_map<SiteId, std::unordered_set<std::uint64_t>>& seen,
    SiteId src, std::uint64_t seq) {
  if (seq == 0) return false;
  return !seen[src].insert(seq).second;
}

/// High-water-mark variant for process-lifetime streams (summary adverts):
/// true iff (epoch, seq) is at or below the highest already processed from
/// src. Bounded at one record per sender where a set would grow one entry
/// per advert forever; the epoch scopes the mark to the sender's
/// incarnation so a restarted sender's fresh adverts (seq counter back at
/// 1, epoch strictly higher) pass immediately. See the summary_seen_
/// member comment for why suppressing reordered older adverts is sound.
bool already_seen(std::unordered_map<SiteId, SummaryAdvertHighWater>& marks,
                  SiteId src, std::uint64_t epoch, std::uint64_t seq) {
  if (seq == 0) return false;
  auto [it, fresh] = marks.try_emplace(src);
  SummaryAdvertHighWater& hw = it->second;
  if (!fresh) {
    if (epoch < hw.epoch) return true;  // straggler from an older incarnation
    if (epoch == hw.epoch && seq <= hw.seq) return true;
  }
  hw.epoch = epoch;
  hw.seq = seq;
  return false;
}

/// Persist the boot counter write-then-fsync-then-rename: a crash at any
/// point leaves either the old sidecar or the new one, never a truncated
/// file whose empty read would restart the epoch at 1 and hand pre-crash
/// summaries their pruning authority back.
bool write_boot_epoch(const std::string& path, std::uint64_t epoch) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  bool ok =
      std::fprintf(f, "%llu", static_cast<unsigned long long>(epoch)) > 0;
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(::fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::chrono::steady_clock::time_point now_tick() {
  return std::chrono::steady_clock::now();
}

std::uint64_t us_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now_tick() - t0)
          .count());
}

}  // namespace

SiteServer::SiteServer(std::unique_ptr<MessageEndpoint> endpoint, SiteStore store,
                       SiteServerOptions options)
    : endpoint_(std::move(endpoint)),
      store_(std::move(store)),
      names_(store_.site()),
      options_(std::move(options)) {
  // Recovery first: a durable site's checkpoint + WAL are the authoritative
  // store state, superseding whatever the caller passed in. Births are then
  // registered from the *recovered* store.
  if (!options_.wal_dir.empty()) recover_durable_state();
  // Summary epoch (DESIGN.md §16): durable sites count their boots in a
  // sidecar file, so summaries advertised after a crash-restart carry a
  // higher epoch and supersede pre-crash ones at every peer — the store's
  // own version counter alone cannot order across incarnations.
  if (options_.summary_interval > Duration(0)) {
    if (!options_.wal_dir.empty()) {
      const std::string boot_path = options_.wal_dir + "/site_" +
                                    std::to_string(store_.site()) + ".boot";
      std::uint64_t boots = 0;
      if (std::ifstream in(boot_path); in) in >> boots;
      summary_epoch_ = boots + 1;
      if (!write_boot_epoch(boot_path, summary_epoch_)) {
        HF_WARN << "site " << store_.site()
                << ": cannot persist boot epoch to " << boot_path
                << " — a crash may resurrect pre-crash summary authority";
      }
    } else {
      // Volatile sites have no sidecar and their version counter restarts
      // at zero, so without an epoch a restarted site's fresh summaries
      // would lose the (epoch, version) race to its own pre-crash records
      // still circulating via gossip — and with no TTL configured peers
      // would false-prune it forever. Stamp each incarnation with the boot
      // wall clock: strictly increasing across restarts, and only ever
      // compared against this site's own earlier epochs.
      summary_epoch_ = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
    }
  }
  // Everything currently stored here was (as far as we know) born here.
  for (const ObjectId& id : store_.all_ids()) names_.register_birth(id);
  if (options_.drain_workers > 0) {
    drain_pool_ = std::make_unique<WorkerPool>(options_.drain_workers);
  }
  // Pre-register the replication instruments so every metrics dump of a
  // replicating deployment carries them — a zero reads as "configured but
  // quiet", an absent name as "not measured" (DESIGN.md §12, §18).
  if (options_.replication_interval > Duration(0)) {
    metrics().counter("dist.wal_segments_shipped");
    metrics().counter("dist.replica_applies");
    metrics().counter("dist.failovers");
    metrics().histogram("dist.replica_lag_us");
  }
}

void SiteServer::recover_durable_state() {
  const std::string base =
      options_.wal_dir + "/site_" + std::to_string(store_.site());
  const std::string ckpt_path = base + ".ckpt";
  const std::string wal_path = base + ".wal";

  bool had_checkpoint = false;
  if (auto restored = load_snapshot(ckpt_path); restored.ok()) {
    store_ = std::move(restored).value();
    had_checkpoint = true;
  }
  auto replayed = replay_wal(wal_path);
  if (!replayed.ok()) {
    // An unreadable log is a durability problem, not an availability one:
    // serve from what we have (checkpoint or caller store) and start fresh.
    HF_ERROR << "site " << store_.site() << ": WAL replay failed: "
             << replayed.error().message;
    replayed = WalReplay{};
  }
  for (const WalRecord& rec : replayed.value().records) {
    store_.apply_wal_record(rec);
  }
  if (replayed.value().torn) {
    HF_WARN << "site " << store_.site() << ": WAL tail torn after "
            << replayed.value().records.size()
            << " records; truncating to last good record";
  }
  auto wal = WriteAheadLog::open(wal_path, replayed.value());
  if (!wal.ok()) {
    HF_ERROR << "site " << store_.site() << ": cannot open WAL: "
             << wal.error().message << " — running without durability";
    return;
  }
  wal_ = std::make_unique<WriteAheadLog>(std::move(wal).value());
  store_.attach_wal(wal_.get());
  // Ship epoch (DESIGN.md §18): like the summary boot epoch, but counting
  // WAL generations — bumped here per boot (a crash may have lost appends a
  // follower already applied, so pre-crash offsets must die with it) and on
  // every checkpoint truncation. Bootstrapped before the initial checkpoint
  // below so that checkpoint rolls it like any other.
  if (options_.replication_interval > Duration(0)) {
    const std::string ship_path = base + ".ship";
    std::uint64_t generations = 0;
    if (std::ifstream in(ship_path); in) in >> generations;
    ship_epoch_ = generations + 1;
    if (!write_boot_epoch(ship_path, ship_epoch_)) {
      HF_WARN << "site " << store_.site()
              << ": cannot persist ship epoch to " << ship_path
              << " — followers may mistake a stale WAL tail for a live one";
    }
  }
  if (!had_checkpoint && replayed.value().records.empty() &&
      store_.size() > 0) {
    // A seeded store with no durable history yet (first boot from a
    // snapshot argument): checkpoint it immediately, or a crash before the
    // first periodic checkpoint would lose the seed on a no-snapshot
    // restart.
    if (auto r = do_checkpoint(); !r.ok()) {
      HF_WARN << "site " << store_.site() << ": initial checkpoint failed: "
              << r.error().message;
    }
  }
  if (had_checkpoint || !replayed.value().records.empty()) {
    metrics().counter("dist.crash_recoveries").inc();
    HF_INFO << "site " << store_.site() << ": recovered "
            << store_.size() << " objects (checkpoint: "
            << (had_checkpoint ? "yes" : "no") << ", WAL records: "
            << replayed.value().records.size() << ")";
  }
}

Result<void> SiteServer::do_checkpoint() {
  if (wal_ == nullptr) {
    return make_error(Errc::kInvalidArgument,
                      "site has no wal_dir; nothing to checkpoint");
  }
  const std::string base =
      options_.wal_dir + "/site_" + std::to_string(store_.site());
  const std::string ckpt_path = base + ".ckpt";
  const std::string tmp_path = ckpt_path + ".tmp";
  // Write-then-rename so a crash mid-checkpoint leaves the previous
  // checkpoint intact; the WAL is only truncated once the new one is the
  // durable state.
  // hfverify: allow-blocking(checkpoint): checkpoints run on the loop by
  // design — the snapshot must see a quiescent store (DESIGN.md §13).
  if (auto r = save_snapshot(store_, tmp_path); !r.ok()) return r.error();
  // hfverify: allow-blocking(checkpoint): atomic install, same pause.
  if (std::rename(tmp_path.c_str(), ckpt_path.c_str()) != 0) {
    return make_error(Errc::kIo, "cannot install checkpoint " + ckpt_path);
  }
  // The rename is durable only once the directory entry itself is synced
  // (save_snapshot fsynced the *bytes*, not the *name*). Truncating the WAL
  // before that would leave a crash window where neither the WAL records
  // nor the checkpoint that subsumed them survive — acknowledged mutations
  // silently lost.
  // hfverify: allow-blocking(checkpoint): durability barrier, same pause.
  if (auto r = fsync_parent_dir(ckpt_path); !r.ok()) return r;
  metrics().counter("dist.checkpoints").inc();
  // hfverify: allow-blocking(checkpoint): WAL reset is part of the pause.
  if (auto r = wal_->truncate(); !r.ok()) return r;
  // Truncation invalidates every byte offset shipped so far: roll the WAL
  // generation and resync followers via snapshot. The sidecar write is
  // best-effort — a lost bump is re-covered by the next boot's bump, and
  // until then the worst case is a follower resyncing once more than
  // strictly needed.
  ++ship_epoch_;
  if (options_.replication_interval > Duration(0)) {
    // hfverify: allow-blocking(checkpoint): epoch sidecar, same pause.
    (void)write_boot_epoch(base + ".ship", ship_epoch_);
    for (auto& [follower, ship] : followers_) ship.needs_catchup = true;
  }
  return {};
}

Result<void> SiteServer::checkpoint() {
  return run_exclusive([this] { return do_checkpoint(); });
}

Result<void> SiteServer::run_exclusive(
    const std::function<Result<void>()>& fn) {
  if (!running_.load()) return fn();  // stopped: the caller owns the state
  auto waiter = std::make_shared<CtlWaiter>();
  {
    MutexLock lock(ctl_mu_);
    ctl_.push_back(CtlTask{fn, waiter});
  }
  // Wake-capable endpoints park in recv() until traffic or a deadline;
  // kick the loop so the task runs now instead of at the next wakeup.
  endpoint_->wake_recv();
  MutexLock lock(waiter->mu);
  while (!waiter->done) waiter->cv.wait(lock);
  return waiter->result;
}

void SiteServer::drain_ctl() {
  std::vector<CtlTask> tasks;
  {
    MutexLock lock(ctl_mu_);
    tasks.swap(ctl_);
  }
  for (CtlTask& task : tasks) {
    Result<void> r = task.fn();
    {
      MutexLock lock(task.waiter->mu);
      task.waiter->result = std::move(r);
      task.waiter->done = true;
    }
    task.waiter->cv.notify_all();
  }
}

SiteServer::~SiteServer() { stop(); }

void SiteServer::start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);
  // hfverify: allow-role(thread-entry): the lambda body IS the event-loop
  // thread; start() only launches it.
  thread_ = std::thread([this] { run_loop(); });
}

void SiteServer::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  endpoint_->wake_recv();  // don't wait out a parked recv() to notice
  if (thread_.joinable()) thread_.join();
  running_.store(false);
  // Serve any run_exclusive calls that raced the shutdown — their callers
  // are blocked waiting; with the loop thread gone this thread owns the
  // loop-confined state.
  // hfverify: allow-role(loop-joined): the loop thread is joined above;
  // this thread is the sole owner of the loop-confined state now.
  drain_ctl();
  // Fold stats of any still-live contexts (e.g. queries interrupted by
  // shutdown) into the totals; safe now that the loop thread is gone.
  // Snapshot before taking stats_mu_: exec->stats() acquires the engine's
  // own stats lock, and stats_mu_ is a leaf (DESIGN.md §10 rule 2).
  EngineStats interrupted;
  // hfverify: allow-role(loop-joined): same — loop thread is gone.
  for (auto& [qid, p] : contexts_) {
    interrupted += p.exec->stats();
    for (auto& [primary, se] : p.shadow_execs) interrupted += se->stats();
  }
  // hfverify: allow-role(loop-joined): same — loop thread is gone.
  contexts_.clear();
  {
    MutexLock lock(stats_mu_);
    total_stats_ += interrupted;
    context_count_cache_ = 0;
  }
}

EngineStats SiteServer::engine_stats() const {
  MutexLock lock(stats_mu_);
  return total_stats_;
}

std::size_t SiteServer::context_count() const {
  MutexLock lock(stats_mu_);
  return context_count_cache_;
}

std::size_t SiteServer::summary_count() const {
  MutexLock lock(stats_mu_);
  return summary_count_cache_;
}

SiteServer::ReplicaProbe SiteServer::replica_probe(SiteId primary) {
  ReplicaProbe probe;
  (void)run_exclusive([&]() -> Result<void> {
    // hfverify: allow-role(run-exclusive): this closure holds exclusive
    // ownership of the loop-confined state — it runs on the loop thread,
    // or inline only once the loop has stopped.
    auto it = replicas_.find(primary);
    // hfverify: allow-role(run-exclusive): same exclusive closure.
    if (it == replicas_.end()) return {};
    probe.exists = true;
    probe.ship_epoch = it->second->watermark.ship_epoch;
    probe.wal_offset = it->second->watermark.wal_offset;
    probe.covers_tail = it->second->watermark.covers(it->second->primary_tail);
    probe.shadow = it->second->shadow;
    return {};
  });
  return probe;
}

SiteStore SiteServer::store_copy() {
  SiteStore copy(store_.site());
  (void)run_exclusive([&]() -> Result<void> {
    copy = store_;
    return {};
  });
  // The copy must not shadow mutations into the live server's WAL.
  copy.attach_wal(nullptr);
  return copy;
}

void SiteServer::run_loop() {
  Gauge& contexts_gauge =
      metrics().gauge("dist.contexts", "site=" + std::to_string(store_.site()));
  last_sweep_ = now_tick();
  last_checkpoint_ = last_sweep_;
  last_liveness_check_ = last_sweep_;
  // First tick builds and advertises immediately: a freshly (re)started
  // site re-announces itself without waiting out a full interval.
  last_summary_advert_ = last_sweep_ - options_.summary_interval;
  last_replication_ = last_sweep_ - options_.replication_interval;
  // Readiness-driven endpoints (epoll, in-proc) interrupt a parked recv()
  // on traffic, run_exclusive and stop(), so the wait may stretch to the
  // next periodic deadline; the threaded TCP backend cannot interrupt a
  // parked receiver and keeps the short timed poll.
  const bool wakeable = endpoint_->wake_capable();
  while (!stopping_.load()) {
    // The wait is bounded — by recv_budget() (the nearest periodic
    // deadline, capped at 1s) on wake-capable endpoints, where wake_recv()
    // cuts the wait short, and by poll_interval on the threaded fallback.
    const Duration wait = wakeable ? recv_budget() : options_.poll_interval;
    // hfverify: allow-blocking(recv-wait): bounded wait, see above.
    auto env = endpoint_->recv(wait);
    if (env.has_value()) handle(std::move(*env));
    drain_ctl();
    sweep_contexts();
    check_liveness();
    check_summaries();
    check_replication();
    if (options_.checkpoint_interval > Duration(0) && wal_ != nullptr &&
        wal_->record_count() > 0 &&
        now_tick() - last_checkpoint_ >= options_.checkpoint_interval) {
      last_checkpoint_ = now_tick();
      if (auto r = do_checkpoint(); !r.ok()) {
        HF_WARN << "site " << store_.site()
                << ": periodic checkpoint failed: " << r.error().message;
      }
    }
    contexts_gauge.set(static_cast<std::int64_t>(contexts_.size()));
    MutexLock lock(stats_mu_);
    context_count_cache_ = contexts_.size();
    summary_count_cache_ = peer_summaries_.size();
  }
}

Duration SiteServer::recv_budget() const {
  const auto now = now_tick();
  // 1s cap: a cheap heartbeat through the loop even when every periodic
  // duty is idle (and a backstop should a wakeup ever be missed).
  Duration budget = Duration(1'000'000);
  const auto consider = [&](std::chrono::steady_clock::time_point last,
                            Duration period) {
    if (period <= Duration(0)) return;
    const Duration elapsed =
        std::chrono::duration_cast<Duration>(now - last);
    budget = std::min(budget,
                      elapsed >= period ? Duration(0) : period - elapsed);
  };
  consider(last_sweep_, options_.context_ttl / 4);
  if (options_.suspect_after > Duration(0)) {
    consider(last_liveness_check_, options_.suspect_after / 4);
  }
  consider(last_summary_advert_, options_.summary_interval);
  if (wal_ != nullptr && wal_->record_count() > 0) {
    consider(last_checkpoint_, options_.checkpoint_interval);
  }
  consider(last_replication_, options_.replication_interval);
  return budget;
}

Result<void> SiteServer::send_with_retry(SiteId to, const wire::Message& m,
                                         TraceSpan* span) {
  static Counter& retries = metrics().counter("dist.send_retries");
  static Counter& busy_backoffs = metrics().counter("dist.busy_backoffs");
  auto r = endpoint_->send(to, m);
  Duration backoff = options_.retry_backoff;
  for (int attempt = 0; !r.ok() && attempt < options_.send_retries;
       ++attempt) {
    const Errc c = r.error().code;
    if (c == Errc::kNotFound || c == Errc::kInvalidArgument) break;
    // kBusy is the epoll backend's backpressure signal: the peer's bounded
    // send queue is full, nothing was lost, and the frame slot reopens as
    // the loop drains — exactly what the backoff below is for. Tracked
    // separately from transport failures so saturation is visible.
    if (c == Errc::kBusy) busy_backoffs.inc();
    // hfverify: allow-blocking(retry-backoff): bounded exponential backoff
    // (send_retries * max backoff), accepted loop stall on a sick peer.
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
    retries.inc();
    if (span != nullptr) ++span->retries;
    r = endpoint_->send(to, m);
  }
  // A send that still fails after the retry budget is a loud death signal
  // (dead fd, closed mailbox) — at least as strong as a silence window, and
  // available *now* rather than after suspect_after of quiet. Record it for
  // the next check_liveness pass (not suspect_peer() here: that force-
  // finishes originations, and this path runs mid-drain with live
  // Participation references) so the next routing decision fails over to
  // the peer's replica (DESIGN.md §18) instead of re-dropping an item per
  // query. A wrong verdict (transient connect hiccup) heals exactly like a
  // real revival: check_liveness keeps pinging suspects, and any reply
  // revives the peer. kBusy is excluded — backpressure means the peer is
  // alive and draining, the opposite of dead.
  if (!r.ok() && r.error().code != Errc::kBusy &&
      options_.suspect_after > Duration(0)) {
    liveness_.try_emplace(to).first->second.send_failed = true;
  }
  return r;
}

void SiteServer::note_engagement(Participation& p, std::uint32_t hop,
                                 const std::vector<SiteId>& path) {
  std::vector<SiteId> with_self = path;
  if (with_self.size() < TraceSpan::kMaxPath) {
    with_self.push_back(store_.site());
  }
  if (p.span.messages == 0 || hop < p.span.first_hop) {
    p.span.first_hop = hop;
    p.span.path = with_self;
  }
  ++p.span.messages;
  p.current_hop = hop;
  p.out_path = std::move(with_self);
}

bool SiteServer::stale_own_query(const wire::QueryId& qid, SiteId src) {
  if (qid.originator != store_.site()) return false;
  if (find_origination(qid) != nullptr) return false;
  // A retried or wire-duplicated message outlived the query it belongs to.
  // Re-announce completion (the sender's QueryDone may have been the lost
  // message) instead of recreating a context that nothing would ever close.
  if (src != store_.site() && src != kNoSite) {
    (void)endpoint_->send(src, wire::QueryDone{qid});
  }
  return true;
}

void SiteServer::sweep_contexts() {
  const auto now = now_tick();
  if (now - last_sweep_ < options_.context_ttl / 4) return;
  last_sweep_ = now;

  // Expired originations: termination can no longer be detected (weight or
  // acks were lost in flight) — answer with everything that did arrive,
  // flagged partial. "Partial results are better than none at all."
  std::vector<wire::QueryId> expired;
  for (auto& [qid, o] : originated_) {
    if (!o.replied && now - o.last_activity >= options_.context_ttl) {
      expired.push_back(qid);
    }
  }
  for (const auto& qid : expired) {
    auto it = originated_.find(qid);
    if (it == originated_.end()) continue;
    HF_DEBUG << "site " << store_.site() << ": query " << qid.to_string()
             << " idle past TTL; forcing partial reply";
    maybe_finish(qid, it->second, /*force=*/true);
  }

  // Participant contexts: re-flush stashed results while fresh; once idle
  // past the TTL (our QueryDone was lost, or the originator expired), one
  // final flush attempt and then discard.
  std::vector<wire::QueryId> flush;
  std::vector<wire::QueryId> dead;
  for (auto& [qid, p] : contexts_) {
    if (find_origination(qid) != nullptr) continue;  // dies with origination
    const bool pending = !p.pending_ids.empty() || !p.pending_values.empty() ||
                         p.pending_count > 0 ||
                         (p.executions_idle() && p.weight.holding());
    const bool stale = now - p.last_activity >= options_.context_ttl;
    if (stale) {
      dead.push_back(qid);
    } else if (pending) {
      flush.push_back(qid);
    }
  }
  for (const auto& qid : flush) drain_and_flush(qid);
  if (!dead.empty()) {
    metrics().counter("dist.ttl_context_discards").inc(dead.size());
  }
  for (const auto& qid : dead) {
    drain_and_flush(qid);  // last chance for results + weight to get home
    discard_context(qid);
  }
}

void SiteServer::check_liveness() {
  if (options_.suspect_after <= Duration(0)) return;
  const auto now = now_tick();
  if (now - last_liveness_check_ < options_.suspect_after / 4) return;
  last_liveness_check_ = now;

  // Peers of interest: anyone a live query of ours is waiting on. For an
  // origination that is every involved site; for a participation it is the
  // originator (whose QueryDone we are waiting for).
  std::unordered_set<SiteId> interest;
  for (const auto& [qid, o] : originated_) {
    if (o.replied) continue;
    for (SiteId s : o.involved) interest.insert(s);
  }
  for (const auto& [qid, p] : contexts_) {
    if (qid.originator != store_.site()) interest.insert(qid.originator);
  }
  // A follower is permanently interested in the primaries it replicates:
  // failover (route_remote serving from the shadow store) triggers on *our
  // own* suspicion of the primary, and the WAL stream refreshing last_seen
  // makes that verdict timely — silence on a stream that ticks every
  // replication_interval is the strongest death signal this site has.
  if (options_.replication_interval > Duration(0)) {
    for (const auto& [primary, follower] : options_.replica_assignment) {
      if (follower == store_.site()) interest.insert(primary);
    }
  }
  // A recorded loud send failure is interest enough: the query that hit it
  // may already have replied (partial), but the verdict must still land so
  // the *next* query fails over instead of re-dropping.
  for (const auto& [peer, pl] : liveness_) {
    if (pl.send_failed) interest.insert(peer);
  }
  interest.erase(store_.site());

  const Duration probe_after = options_.suspect_after / 3;
  std::vector<SiteId> newly_suspect;
  for (SiteId peer : interest) {
    auto [it, fresh] = liveness_.try_emplace(peer);
    PeerLiveness& pl = it->second;
    if (pl.send_failed) {
      // Loud failure: suspect without waiting out the silence window.
      pl.send_failed = false;
      if (!pl.suspected) newly_suspect.push_back(peer);
      continue;
    }
    if (fresh) {
      // First interest in this peer: give it a full window from now rather
      // than suspecting it for silence predating our interest.
      pl.last_seen = now;
      continue;
    }
    if (pl.suspected) continue;
    const auto silent = now - pl.last_seen;
    if (silent >= options_.suspect_after) {
      newly_suspect.push_back(peer);
    } else if (silent >= probe_after && now - pl.last_ping >= probe_after) {
      pl.last_ping = now;
      // Fire-and-forget probe. A *loud* failure (kClosed: dead fd, closed
      // mailbox) is already a verdict — no need to wait out the window.
      if (auto r = endpoint_->send(peer, wire::PingMessage{true}); !r.ok()) {
        newly_suspect.push_back(peer);
      }
    }
  }
  for (SiteId peer : newly_suspect) suspect_peer(peer);

  // Suspicion must heal: a crashed site that restarts (or a partition that
  // mends) never sends us anything unsolicited, so keep pinging suspects —
  // independent of query interest — and let the reply's arrival in handle()
  // revive them. Failures just mean the suspect is still dead.
  for (auto& [peer, pl] : liveness_) {
    if (!pl.suspected || now - pl.last_ping < probe_after) continue;
    pl.last_ping = now;
    (void)endpoint_->send(peer, wire::PingMessage{true});
  }
}

void SiteServer::check_summaries() {
  if (options_.summary_interval <= Duration(0)) return;
  const auto now = now_tick();
  if (summary_built_ &&
      now - last_summary_advert_ < options_.summary_interval) {
    return;
  }
  last_summary_advert_ = now;
  if (!summary_built_ || store_.version() != own_summary_.version) {
    own_summary_ = index::SiteSummary::build(store_);
    own_summary_.epoch = summary_epoch_;
    summary_built_ = true;
    metrics().counter("dist.summary_builds").inc();
  }

  auto to_record = [](const index::SiteSummary& s) {
    wire::SummaryRecord rec;
    rec.origin = s.origin;
    rec.epoch = s.epoch;
    rec.version = s.version;
    rec.hash_count = s.filter.hash_count();
    rec.entries = s.filter.entries();
    rec.bits = s.filter.bytes();
    return rec;
  };
  wire::SummaryMessage sm;
  sm.records.push_back(to_record(own_summary_));  // own record: age 0
  if (options_.summary_gossip) {
    for (const auto& [peer, cached] : peer_summaries_) {
      // Relay with the age the record has accrued here (installed is
      // origin-anchored, so inherited age compounds across hops). A record
      // past the TTL has no authority left to spread — don't gossip it.
      const Duration age = std::chrono::duration_cast<Duration>(
          now - cached.installed);
      if (options_.summary_ttl > Duration(0) && age >= options_.summary_ttl) {
        continue;
      }
      wire::SummaryRecord rec = to_record(cached.summary);
      rec.age_us = static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, std::chrono::duration_cast<std::chrono::microseconds>(age)
                 .count()));
      sm.records.push_back(std::move(rec));
    }
  }
  // Fire-and-forget, like pings: adverts are periodic and idempotent, so a
  // lost one is simply superseded by the next; retrying would stall the
  // loop against a dead peer for nothing.
  for (SiteId peer : options_.summary_peers) {
    if (peer == store_.site()) continue;
    wire::SummaryMessage copy = sm;
    copy.msg_seq = next_msg_seq_++;
    if (endpoint_->send(peer, wire::Message(std::move(copy))).ok()) {
      metrics().counter("dist.summary_exchanges").inc();
    }
  }
}

void SiteServer::handle_summary(SiteId src, wire::SummaryMessage sm) {
  // Dedup before any install: a wire-duplicated advert must not count as a
  // fresh exchange nor re-run the install scan. The sender's own record
  // leads the message (check_summaries pushes it first) and its epoch
  // names the sender's incarnation, scoping the seq high-water mark; a
  // malformed message without that leading record deduces epoch 0 and is
  // conservatively suppressed once a real incarnation has been seen.
  std::uint64_t sender_epoch = 0;
  if (!sm.records.empty() && sm.records.front().origin == src) {
    sender_epoch = sm.records.front().epoch;
  }
  if (already_seen(summary_seen_, src, sender_epoch, sm.msg_seq)) {
    metrics().counter("dist.dedup_hits").inc();
    return;
  }
  const auto now = now_tick();
  for (wire::SummaryRecord& rec : sm.records) {
    install_summary(std::move(rec), now);
  }
  // Deliberately no liveness touch here: a gossiped record is hearsay about
  // its origin, not a frame from it. Only the envelope-level heartbeat in
  // handle() — which saw `src` itself on the wire — may refresh a clock, so
  // a stale relayed record can never resurrect a suspected peer.
}

void SiteServer::install_summary(wire::SummaryRecord rec,
                                 std::chrono::steady_clock::time_point now) {
  if (rec.origin == store_.site() || rec.origin == kNoSite) return;
  // Wire sanity: hash_count bounds every maybe_contains probe loop on the
  // route_remote hot path, so a corrupt or hostile value (up to 2^32) is a
  // per-probe DoS, not just noise. Builders emit k=7 over a ≥32-byte
  // bitmap; anything outside [1, 64] or bitmap-less is no summary we can
  // trust — drop the origin's cached entry too, falling back to
  // never-prune for it.
  if (rec.hash_count < 1 || rec.hash_count > 64 || rec.bits.empty()) {
    peer_summaries_.erase(rec.origin);
    metrics().counter("dist.summary_rejects").inc();
    HF_WARN << "site " << store_.site()
            << ": rejecting malformed summary record from origin "
            << rec.origin << " (hash_count=" << rec.hash_count
            << ", bits=" << rec.bits.size() << ")";
    return;
  }
  auto it = peer_summaries_.find(rec.origin);
  if (it != peer_summaries_.end()) {
    const index::SiteSummary& cached = it->second.summary;
    const bool newer =
        rec.epoch > cached.epoch ||
        (rec.epoch == cached.epoch && rec.version > cached.version);
    const bool expired =
        options_.summary_ttl > Duration(0) &&
        now - it->second.installed >= options_.summary_ttl;
    // Strictly-newer wins; an expired cache entry carries no authority and
    // yields to anything, including a version regression (the origin may
    // have restarted volatile, resetting its counters).
    if (!newer && !expired) return;
  }
  index::SiteSummary s;
  s.origin = rec.origin;
  s.epoch = rec.epoch;
  s.version = rec.version;
  s.filter = index::BloomFilter::from_parts(std::move(rec.bits),
                                            rec.hash_count, rec.entries);
  // Anchor the staleness clock at the origin: the record arrives already
  // age_us old, and installing it must not hand that age back. Clamp the
  // wire value to the TTL — anything at or past it is equally dead, and
  // the clamp keeps a hostile 2^64 age from wrapping the time_point the
  // other way (into the future, i.e. eternally fresh).
  std::chrono::steady_clock::time_point installed = now;
  if (options_.summary_ttl > Duration(0)) {
    const std::uint64_t ttl_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            options_.summary_ttl)
            .count());
    installed -= std::chrono::microseconds(std::min(rec.age_us, ttl_us));
  }
  peer_summaries_[rec.origin] = CachedSummary{std::move(s), installed};
  metrics().counter("dist.summary_installs").inc();
}

bool SiteServer::summary_prunes(SiteId dest, const Query& query,
                                std::uint32_t start, const ObjectId& oid) {
  if (options_.summary_interval <= Duration(0)) return false;
  auto it = peer_summaries_.find(dest);
  if (it == peer_summaries_.end()) return false;  // unknown: never prune
  if (options_.summary_ttl > Duration(0) &&
      now_tick() - it->second.installed >= options_.summary_ttl) {
    return false;  // expired: staleness never prunes
  }
  return !it->second.summary.may_contribute(query, start, oid);
}

void SiteServer::suspect_peer(SiteId peer) {
  auto it = liveness_.find(peer);
  if (it == liveness_.end() || it->second.suspected) return;
  it->second.suspected = true;
  metrics().counter("dist.suspicions").inc();
  HF_WARN << "site " << store_.site() << ": suspecting site " << peer
          << " (silent past suspicion window)";

  // The suspect's cached summary dies with the suspicion: if the site comes
  // back — possibly volatile, with new content and a reset version counter —
  // a stale summary must not keep pruning work it could now serve.
  peer_summaries_.erase(peer);

  // Originations waiting on the suspect: force-finish as partial *now* —
  // the whole point of suspicion is answering within this window instead of
  // the much larger context_ttl. The suspicion is annotated on the
  // originator's own span before the reply assembles the trace.
  std::vector<wire::QueryId> to_finish;
  for (auto& [qid, o] : originated_) {
    if (!o.replied && o.involved.count(peer) != 0) to_finish.push_back(qid);
  }
  for (const auto& qid : to_finish) {
    auto oit = originated_.find(qid);
    if (oit == originated_.end()) continue;
    if (auto cit = contexts_.find(qid); cit != contexts_.end()) {
      ++cit->second.span.suspicions;
    }
    HF_INFO << "site " << store_.site() << ": query " << qid.to_string()
            << " involves suspected site " << peer
            << "; forcing partial reply";
    maybe_finish(qid, oit->second, /*force=*/true);
  }

  // Participations whose originator is the suspect: nobody is left to send
  // QueryDone. One final flush (results + weight head home the moment the
  // originator revives and its mailbox drains) and discard.
  std::vector<wire::QueryId> orphaned;
  for (const auto& [qid, p] : contexts_) {
    if (qid.originator == peer) orphaned.push_back(qid);
  }
  for (const auto& qid : orphaned) {
    drain_and_flush(qid);
    discard_context(qid);
  }
}

// --- WAL replication (DESIGN.md §18) ---------------------------------------

ReplicaTail* SiteServer::replica_slot(SiteId primary) {
  auto it = options_.replica_assignment.find(primary);
  if (it == options_.replica_assignment.end() ||
      it->second != store_.site() || primary == store_.site()) {
    return nullptr;
  }
  auto [rit, fresh] = replicas_.try_emplace(primary);
  if (rit->second == nullptr) {
    rit->second = std::make_unique<ReplicaTail>(primary);
  }
  return rit->second.get();
}

void SiteServer::check_replication() {
  if (options_.replication_interval <= Duration(0)) return;
  const auto now = now_tick();
  if (now - last_replication_ < options_.replication_interval) return;
  last_replication_ = now;

  // Follower half: (re)subscribe to assigned primaries whose stream has
  // gone quiet. One path covers the initial subscribe, a lost subscribe, a
  // primary reboot, and the gap/corruption resyncs apply_segment requests.
  constexpr auto kNever = std::chrono::steady_clock::time_point{};
  for (const auto& [primary, follower] : options_.replica_assignment) {
    if (follower != store_.site() || primary == store_.site()) continue;
    ReplicaTail* rt = replica_slot(primary);
    if (rt == nullptr) continue;
    const bool quiet = rt->last_heard == kNever ||
                       now - rt->last_heard >= 4 * options_.replication_interval;
    if (!quiet) continue;
    if (rt->last_subscribe != kNever &&
        now - rt->last_subscribe < options_.replication_interval) {
      continue;  // one announce per tick is plenty
    }
    if (peer_suspected(primary)) continue;  // nobody home; revival re-arms
    send_subscribe(primary, *rt);
  }

  // Primary half: ship our WAL tail to every subscribed follower. Volatile
  // sites (no WAL) never ship — there is no redo stream to speak of.
  if (wal_ == nullptr) return;
  for (auto& [follower, ship] : followers_) {
    if (peer_suspected(follower)) continue;
    ship_to(follower, ship);
  }
}

void SiteServer::send_subscribe(SiteId primary, ReplicaTail& rt) {
  wire::WalSubscribe ws;
  ws.follower = store_.site();
  ws.ship_epoch = rt.watermark.ship_epoch;
  ws.wal_offset = rt.watermark.wal_offset;
  // Deliberately unsequenced (msg_seq 0, never suppressed): a subscribe is
  // an idempotent cursor placement, and a seq high-water mark would eat a
  // rebooted follower's first subscribe — its counter restarts below the
  // primary's mark, and a follower has no persisted epoch of its own to
  // scope the mark with (ship_epoch here is the *primary's*).
  ws.msg_seq = 0;
  rt.last_subscribe = now_tick();
  if (endpoint_->send(primary, wire::Message(std::move(ws))).ok()) {
    metrics().counter("dist.wal_subscribes_sent").inc();
  }
}

void SiteServer::handle_wal_subscribe(SiteId src, wire::WalSubscribe ws) {
  // Subscribes travel unsequenced (see send_subscribe), so this guard never
  // suppresses anything — it short-circuits on msg_seq 0 without touching
  // the mark. It exists because the dedup-before-side-effects contract
  // (tools/hfverify ordering rule) is checked uniformly over every handler
  // of a sequenced message type, and an exception here would be a standing
  // invitation to add a sequenced send path without a guard.
  if (already_seen(wal_stream_seen_, src, ws.ship_epoch, ws.msg_seq)) {
    metrics().counter("dist.dedup_hits").inc();
    return;
  }
  if (options_.replication_interval <= Duration(0) || wal_ == nullptr ||
      src == store_.site() || src == kNoSite) {
    return;  // not a replicating primary (volatile, or the feature is off)
  }
  FollowerShip& ship = followers_[src];
  ship.ship_epoch = ws.ship_epoch;
  ship.shipped = ws.wal_offset;
  // A generation mismatch (either side rebooted, or we truncated) — or an
  // offset past our tail (we truncated *and* re-filled) — means tail replay
  // from the follower's position is meaningless: snapshot it instead.
  ship.needs_catchup =
      ws.ship_epoch != ship_epoch_ || ws.wal_offset > wal_->byte_size();
  metrics().counter("dist.wal_subscribes").inc();
}

void SiteServer::ship_to(SiteId follower, FollowerShip& ship) {
  if (ship.ship_epoch != ship_epoch_) ship.needs_catchup = true;
  if (ship.needs_catchup) {
    const std::uint64_t tail = wal_->byte_size();
    wire::WalCatchup wc;
    wc.primary = store_.site();
    wc.ship_epoch = ship_epoch_;
    wc.wal_offset = tail;
    wc.snapshot = snapshot_store(store_);
    wc.msg_seq = next_msg_seq_++;
    // Fire-and-forget like summary adverts: a lost shipment surfaces as a
    // quiet stream at the follower, whose re-subscribe re-aims the cursor.
    if (endpoint_->send(follower, wire::Message(std::move(wc))).ok()) {
      ship.ship_epoch = ship_epoch_;
      ship.shipped = tail;
      ship.needs_catchup = false;
      metrics().counter("dist.wal_catchups_shipped").inc();
    }
    return;
  }
  if (ship.shipped >= wal_->byte_size()) return;  // follower is current
  // hfverify: allow-blocking(wal-ship): bounded file read (one
  // replication_segment_bytes batch) in the same loop pause that already
  // absorbs WAL appends; shipping from the file keeps no second copy.
  auto seg = read_wal_segment(wal_->path(), ship.shipped,
                              options_.replication_segment_bytes);
  if (!seg.ok()) {
    HF_WARN << "site " << store_.site() << ": cannot read WAL segment at "
            << ship.shipped << ": " << seg.error().message;
    return;
  }
  if (seg.value().records.empty()) {
    // A torn record at the read offset can never frame a full record again;
    // resync via snapshot rather than re-reading the tear forever.
    if (seg.value().torn) ship.needs_catchup = true;
    return;
  }
  wire::WalSegment wg;
  wg.primary = store_.site();
  wg.ship_epoch = ship_epoch_;
  wg.from_offset = ship.shipped;
  wg.end_offset = seg.value().end_offset;
  wg.records = std::move(seg.value().records);
  wg.msg_seq = next_msg_seq_++;
  const std::uint64_t end = wg.end_offset;
  const std::uint64_t count = wg.records.size();
  if (endpoint_->send(follower, wire::Message(std::move(wg))).ok()) {
    ship.shipped = end;
    metrics().counter("dist.wal_segments_shipped").inc();
    metrics().counter("dist.wal_records_shipped").inc(count);
  }
}

void SiteServer::handle_wal_segment(SiteId src, wire::WalSegment wg) {
  // Dedup before any apply: a wire-duplicated segment must not re-run its
  // records nor advance the watermark twice. Epoch-scoped high-water, like
  // summary adverts and for the same reboot reason; true positional
  // arbitration (gaps, reorders across loss) lives in apply_segment.
  if (already_seen(wal_stream_seen_, src, wg.ship_epoch, wg.msg_seq)) {
    metrics().counter("dist.dedup_hits").inc();
    return;
  }
  apply_segment(src, wg.ship_epoch, wg.from_offset, wg.end_offset,
                std::move(wg.records));
}

void SiteServer::handle_wal_catchup(SiteId src, wire::WalCatchup wc) {
  // Same stream, same mark as WalSegment: segments and catchups from one
  // primary interleave on one msg_seq sequence.
  if (already_seen(wal_stream_seen_, src, wc.ship_epoch, wc.msg_seq)) {
    metrics().counter("dist.dedup_hits").inc();
    return;
  }
  apply_catchup(src, wc.ship_epoch, wc.wal_offset, std::move(wc.snapshot));
}

void SiteServer::apply_segment(SiteId primary, std::uint64_t ship_epoch,
                               std::uint64_t from_offset,
                               std::uint64_t end_offset,
                               std::vector<wire::Bytes> records) {
  ReplicaTail* rt = replica_slot(primary);
  if (rt == nullptr) return;  // stray shipment: we don't follow this site
  rt->last_heard = now_tick();
  // Whatever else happens below, the segment proves the primary's WAL
  // reaches end_offset — remember the freshest tail we have evidence of,
  // so covers() honestly reports lag across gaps and epoch rolls.
  if (ship_epoch > rt->primary_tail.ship_epoch ||
      (ship_epoch == rt->primary_tail.ship_epoch &&
       end_offset > rt->primary_tail.wal_offset)) {
    rt->primary_tail.ship_epoch = ship_epoch;
    rt->primary_tail.wal_offset = end_offset;
  }
  ReplicationWatermark& wm = rt->watermark;
  if (ship_epoch != wm.ship_epoch || from_offset != wm.wal_offset) {
    // Positional mismatch. At-or-behind the watermark in the same epoch is
    // a transport retry of something already applied — drop it. Anything
    // else (a gap, an unseen epoch) means tail replay cannot proceed:
    // re-announce our position and let the primary pick tail vs snapshot.
    if (ship_epoch == wm.ship_epoch && end_offset <= wm.wal_offset) {
      metrics().counter("dist.replica_duplicate_segments").inc();
      return;
    }
    send_subscribe(primary, *rt);
    return;
  }
  auto applied = apply_segment_records(rt->shadow, records);
  if (!applied.ok()) {
    HF_WARN << "site " << store_.site() << ": WAL segment from primary "
            << primary << " corrupt: " << applied.error().message
            << "; resyncing via snapshot";
    // A prefix may have applied; that is safe (the snapshot that answers
    // the resubscribe supersedes the whole shadow), but the watermark must
    // not claim the segment. Reset it so nothing positional matches again.
    rt->watermark = ReplicationWatermark{};
    send_subscribe(primary, *rt);
    return;
  }
  wm.wal_offset = end_offset;
  wm.store_version = rt->shadow.version();
  rt->last_advance = rt->last_heard;
  metrics().counter("dist.replica_applies").inc(applied.value());
}

void SiteServer::apply_catchup(SiteId primary, std::uint64_t ship_epoch,
                               std::uint64_t wal_offset, wire::Bytes snapshot) {
  ReplicaTail* rt = replica_slot(primary);
  if (rt == nullptr) return;
  rt->last_heard = now_tick();
  ReplicationWatermark& wm = rt->watermark;
  // Never rewind onto an older snapshot: a reordered catchup from an
  // earlier generation (or an earlier tail of this one) would roll the
  // shadow back past records already applied.
  if (ship_epoch < wm.ship_epoch ||
      (ship_epoch == wm.ship_epoch && wal_offset <= wm.wal_offset)) {
    metrics().counter("dist.replica_duplicate_segments").inc();
    return;
  }
  auto restored = restore_store(snapshot);
  if (!restored.ok()) {
    HF_WARN << "site " << store_.site() << ": catchup snapshot from primary "
            << primary << " does not restore: " << restored.error().message;
    return;  // stay on the old shadow; the resubscribe path will retry
  }
  // Move-assign into the existing object: failover executions hold
  // references to rt->shadow, which must stay address-stable.
  rt->shadow = std::move(restored).value();
  wm.ship_epoch = ship_epoch;
  wm.wal_offset = wal_offset;
  wm.store_version = rt->shadow.version();
  if (wm.covers(rt->primary_tail)) rt->primary_tail = wm;
  rt->last_advance = rt->last_heard;
  metrics().counter("dist.replica_catchups").inc();
}

SiteExecution& SiteServer::shadow_execution(const wire::QueryId& qid,
                                            Participation& p, SiteId primary) {
  auto it = p.shadow_execs.find(primary);
  if (it != p.shadow_execs.end()) return *it->second;
  SiteStore& shadow = replica_slot(primary)->shadow;
  ExecutionOptions opts;
  opts.discipline = options_.discipline;
  opts.is_local = [&shadow](const ObjectId& id) { return shadow.contains(id); };
  opts.remote_sink = [this, qid](WorkItem&& item) {
    auto cit = contexts_.find(qid);
    if (cit == contexts_.end()) return;
    Participation& ctx = cit->second;
    if (store_.contains(item.id)) {
      // A pointer out of the shadow landing on our *own* store: feed the
      // main execution directly instead of bouncing through the wire.
      ++ctx.span.items;
      ctx.exec->add_item(std::move(item));
      return;
    }
    route_remote(qid, ctx, std::move(item));
  };
  // Always the serial engine, even when a drain pool exists: failover work
  // is the degraded path, and one engine shape keeps the shadow store's
  // event-loop confinement trivially true.
  auto [nit, inserted] = p.shadow_execs.emplace(
      primary,
      std::make_unique<QueryExecution>(p.exec->query(), shadow,
                                       std::move(opts)));
  (void)inserted;
  return *nit->second;
}

void SiteServer::handle(wire::Envelope env) {
  const SiteId src = env.src;
  // Piggybacked heartbeat: any frame from a peer proves it alive. Seeing a
  // *suspected* peer again clears the suspicion — new work routes to it
  // once more (its durable store recovered whatever it acknowledged).
  if (options_.suspect_after > Duration(0) && src != store_.site() &&
      src != kNoSite) {
    auto [it, fresh] = liveness_.try_emplace(src);
    it->second.last_seen = now_tick();
    it->second.send_failed = false;  // the frame outranks a stale failure
    if (!fresh && it->second.suspected) {
      it->second.suspected = false;
      metrics().counter("dist.peer_revivals").inc();
      HF_INFO << "site " << store_.site() << ": site " << src
              << " seen alive again";
    }
  }
  if (auto* pg = std::get_if<wire::PingMessage>(&env.message)) {
    // Answer probes immediately; replies (want_reply=false) were only ever
    // for the last-seen refresh above.
    if (pg->want_reply && src != store_.site() && src != kNoSite) {
      (void)endpoint_->send(src, wire::PingMessage{false});
    }
    return;
  }
  if (auto* dr = std::get_if<wire::DerefRequest>(&env.message)) {
    handle_deref(src, std::move(*dr));
  } else if (auto* bd = std::get_if<wire::BatchDerefRequest>(&env.message)) {
    handle_batch_deref(src, std::move(*bd));
  } else if (auto* sq = std::get_if<wire::StartQuery>(&env.message)) {
    handle_start(src, std::move(*sq));
  } else if (auto* rm = std::get_if<wire::ResultMessage>(&env.message)) {
    handle_result(src, std::move(*rm));
  } else if (auto* cr = std::get_if<wire::ClientRequest>(&env.message)) {
    handle_client_request(src, std::move(*cr));
  } else if (auto* ta = std::get_if<wire::TermAck>(&env.message)) {
    handle_term_ack(src, *ta);
  } else if (auto* mc = std::get_if<wire::MoveCommand>(&env.message)) {
    handle_move_command(src, *mc);
  } else if (auto* md = std::get_if<wire::MoveData>(&env.message)) {
    handle_move_data(std::move(*md));
  } else if (auto* lu = std::get_if<wire::LocationUpdate>(&env.message)) {
    handle_location_update(*lu);
  } else if (auto* sm = std::get_if<wire::SummaryMessage>(&env.message)) {
    handle_summary(src, std::move(*sm));
  } else if (auto* ws = std::get_if<wire::WalSubscribe>(&env.message)) {
    handle_wal_subscribe(src, std::move(*ws));
  } else if (auto* wg = std::get_if<wire::WalSegment>(&env.message)) {
    handle_wal_segment(src, std::move(*wg));
  } else if (auto* wcu = std::get_if<wire::WalCatchup>(&env.message)) {
    handle_wal_catchup(src, std::move(*wcu));
  } else if (auto* qd = std::get_if<wire::QueryDone>(&env.message)) {
    handle_done(*qd);
  }
  // ClientReply at a server: stray, ignore.
}

SiteServer::Origination* SiteServer::find_origination(const wire::QueryId& qid) {
  auto it = originated_.find(qid);
  return it == originated_.end() ? nullptr : &it->second;
}

SiteServer::Participation& SiteServer::participation(const wire::QueryId& qid,
                                                     const Query& query) {
  auto it = contexts_.find(qid);
  if (it != contexts_.end()) return it->second;

  ExecutionOptions opts;
  opts.discipline = options_.discipline;
  opts.is_local = [this](const ObjectId& id) { return store_.contains(id); };
  opts.remote_sink = [this, qid](WorkItem&& item) {
    auto cit = contexts_.find(qid);
    if (cit == contexts_.end()) return;
    route_remote(qid, cit->second, std::move(item));
  };

  auto [nit, inserted] = contexts_.emplace(qid, Participation{});
  (void)inserted;
  nit->second.last_activity = now_tick();
  nit->second.span.site = store_.site();
  if (options_.legacy_drain) {
    if (drain_pool_ != nullptr) {
      nit->second.exec = std::make_unique<LegacyParallelExecution>(
          query, store_, *drain_pool_, std::move(opts));
    } else {
      nit->second.exec =
          std::make_unique<LegacySerialExecution>(query, store_, std::move(opts));
    }
  } else if (drain_pool_ != nullptr) {
    nit->second.exec = std::make_unique<ParallelExecution>(
        query, store_, *drain_pool_, std::move(opts));
  } else {
    nit->second.exec =
        std::make_unique<QueryExecution>(query, store_, std::move(opts));
  }
  return nit->second;
}

Weight SiteServer::borrow_weight(const wire::QueryId& qid, Participation& p) {
  if (using_ds()) return Weight::zero();  // D-S messages carry no weight
  if (Origination* o = find_origination(qid)) return o->term.borrow();
  return p.weight.borrow();
}

void SiteServer::repay_weight(const wire::QueryId& qid, Participation& p,
                              Weight w) {
  if (w.is_zero()) return;
  if (Origination* o = find_origination(qid)) {
    o->term.repay(std::move(w));
  } else {
    p.weight.receive(std::move(w));
  }
}

void SiteServer::ds_on_computation_message(const wire::QueryId& qid,
                                           Participation& p, SiteId src) {
  if (!using_ds()) return;
  if (find_origination(qid) != nullptr) {
    // The root is permanently engaged: every incoming message is acked at
    // once (its completion is subsumed by the root's own idle/deficit test).
    (void)send_with_retry(src, wire::TermAck{qid, next_msg_seq_++});
    return;
  }
  if (!p.ds_engaged) {
    p.ds_engaged = true;  // this message becomes our tree edge
    p.ds_parent = src;
    return;
  }
  (void)send_with_retry(src, wire::TermAck{qid, next_msg_seq_++});
}

void SiteServer::handle_term_ack(SiteId src, const wire::TermAck& ta) {
  auto it = contexts_.find(ta.qid);
  if (it == contexts_.end()) return;
  Participation& p = it->second;
  // A wire-duplicated ack must not decrement the deficit twice: the second
  // decrement would consume the ack of a message still outstanding and
  // declare termination early.
  if (already_seen(p.seen, src, ta.msg_seq)) return;
  p.last_activity = now_tick();
  if (p.ds_deficit > 0) --p.ds_deficit;
  ds_try_settle(ta.qid, p);
}

void SiteServer::ds_try_settle(const wire::QueryId& qid, Participation& p) {
  if (!using_ds()) return;
  if (Origination* o = find_origination(qid)) {
    maybe_finish(qid, *o);
    return;
  }
  if (p.ds_engaged && p.ds_deficit == 0 && p.executions_idle()) {
    const SiteId parent = p.ds_parent;
    p.ds_engaged = false;
    p.ds_parent = kNoSite;
    (void)send_with_retry(parent, wire::TermAck{qid, next_msg_seq_++});
  }
}

void SiteServer::route_remote(const wire::QueryId& qid, Participation& p,
                              WorkItem item) {
  const SiteId self = store_.site();
  SiteId dest;
  if (item.id.presumed_site != self && item.id.presumed_site != kNoSite) {
    dest = item.id.presumed_site;
  } else {
    // The hint points here but the object is absent (moved away, or a
    // dangling pointer). Chase it at most once per (id, start) — the name
    // registry's next hop (local hint, else birth site) decides where.
    if (!p.forwarded.emplace(item.id, item.start).second) return;
    auto hop = names_.next_hop(item.id);
    if (!hop.has_value()) return;  // final arbiter says gone: partial result
    dest = *hop;
  }

  // Route around a suspected peer. Failover first (DESIGN.md §18): if the
  // suspect has a hot standby, its work is served from the replica — from
  // our own shadow store when we are the follower, else by redirecting the
  // message to whoever is. Only when no replica can cover the item does it
  // drop as a *known* loss (reply flagged partial) — still better than
  // waiting out retries against a dead site.
  SiteId send_to = dest;
  if (peer_suspected(dest)) {
    if (ReplicaTail* rt = replica_slot(dest); rt != nullptr) {
      // We are the suspect's follower: execute against the shadow.
      if (rt->shadow.contains(item.id)) {
        ++p.span.failovers;
        metrics().counter("dist.failovers").inc();
        if (!rt->watermark.covers(rt->primary_tail)) {
          // The shadow verifiably trails the primary's last known WAL
          // tail: the answer may miss acknowledged mutations. Flag it —
          // maybe_finish degrades the reply to partial.
          ++p.span.replica_lag;
          metrics().histogram("dist.replica_lag_us")
              .observe(us_since(rt->last_advance));
        }
        shadow_execution(qid, p, dest).add_item(std::move(item));
        return;
      }
      // Not in the shadow (never shipped, or lost to lag): a known loss —
      // executing a miss here could chase stale hints in circles.
    } else if (SiteId standby = replica_for(dest);
               standby != kNoSite && standby != store_.site() &&
               !peer_suspected(standby)) {
      // Someone else holds the replica: redirect the deref there. The
      // oid keeps presuming the dead primary, which is exactly what tells
      // the standby to serve it from that primary's shadow store.
      ++p.span.failovers;
      metrics().counter("dist.failovers").inc();
      send_to = standby;
    }
    if (send_to == dest) {
      if (Origination* o = find_origination(qid)) {
        ++o->dropped_items;
      } else {
        ++p.dropped;
      }
      return;
    }
  }

  // Fan-out pruning (DESIGN.md §16): skip the message entirely when the
  // destination's cached summary is fresh and proves this item cannot
  // contribute there. Unlike the suspicion drop above this is NOT a loss —
  // the summary's never-false-negative guarantee makes the skipped work
  // provably fruitless, so the reply stays exact and unflagged.
  if (summary_prunes(dest, p.exec->query(), item.start, item.id)) {
    ++p.span.pruned;
    metrics().counter("dist.prunes").inc();
    return;
  }

  if (options_.batch_remote_derefs) {
    wire::DerefEntry entry;
    entry.oid = item.id;
    entry.oid.presumed_site = dest;
    entry.start = item.start;
    entry.iter_stack = std::move(item.iter_stack);
    p.pending_batches[send_to].push_back(std::move(entry));
    return;
  }

  Weight w = borrow_weight(qid, p);
  wire::DerefRequest dr;
  dr.qid = qid;
  dr.query = p.exec->query();
  dr.oid = item.id;
  dr.oid.presumed_site = dest;
  dr.start = item.start;
  dr.iter_stack = item.iter_stack;
  dr.weight = w.exponents();
  dr.msg_seq = next_msg_seq_++;
  dr.hop = p.current_hop + 1;
  dr.path = p.out_path;
  if (auto r = send_with_retry(send_to, wire::Message(std::move(dr)), &p.span);
      !r.ok()) {
    // Site unreachable even after retries: drop the item but keep its
    // weight, so the query terminates with partial results instead of
    // hanging (paper Section 1: "Partial results are better than none at
    // all") — and record the loss so the reply is flagged partial.
    HF_DEBUG << "site " << self << ": deref to site " << send_to
             << " failed (" << r.error().to_string() << "); dropping item";
    repay_weight(qid, p, std::move(w));
    if (Origination* o = find_origination(qid)) {
      ++o->dropped_items;
    } else {
      ++p.dropped;
    }
    return;
  }
  ds_on_send(p);
  ++p.span.forwarded;
  if (Origination* o = find_origination(qid)) o->involved.insert(send_to);
}

void SiteServer::flush_batches(const wire::QueryId& qid, Participation& p) {
  for (auto& [dest, items] : p.pending_batches) {
    if (items.empty()) continue;
    const std::uint64_t batch_size = items.size();
    Weight w = borrow_weight(qid, p);
    wire::BatchDerefRequest bd;
    bd.qid = qid;
    bd.query = p.exec->query();
    bd.items = std::move(items);
    bd.weight = w.exponents();
    bd.msg_seq = next_msg_seq_++;
    bd.hop = p.current_hop + 1;
    bd.path = p.out_path;
    if (auto r = send_with_retry(dest, wire::Message(std::move(bd)), &p.span);
        !r.ok()) {
      HF_DEBUG << "site " << store_.site() << ": batch deref to site " << dest
               << " failed (" << r.error().to_string() << "); dropping batch";
      repay_weight(qid, p, std::move(w));
      if (Origination* o = find_origination(qid)) {
        o->dropped_items += batch_size;
      } else {
        p.dropped += batch_size;
      }
      continue;
    }
    ds_on_send(p);
    p.span.forwarded += batch_size;
    if (Origination* o = find_origination(qid)) o->involved.insert(dest);
  }
  p.pending_batches.clear();
}

void SiteServer::handle_deref(SiteId src, wire::DerefRequest dr) {
  if (stale_own_query(dr.qid, src)) return;
  Participation& p = participation(dr.qid, dr.query);
  // Dedup before any bookkeeping: repaying a replayed message's weight a
  // second time would push held weight past one, and acking it under D-S
  // would cancel an ack the sender is still owed.
  if (already_seen(p.seen, src, dr.msg_seq)) {
    ++p.span.duplicates;
    metrics().counter("dist.dedup_hits").inc();
    return;
  }
  p.last_activity = now_tick();
  note_engagement(p, dr.hop, dr.path);
  ds_on_computation_message(dr.qid, p, src);
  repay_weight(dr.qid, p, Weight::from_exponents(dr.weight));

  // Prune effectiveness accounting: if our own current summary would have
  // pruned this message, the sender paid for it anyway — its cache of us
  // was missing or stale, or a Bloom false positive let it through.
  if (summary_built_ &&
      !own_summary_.may_contribute(dr.query, dr.start, dr.oid)) {
    metrics().counter("dist.prune_false_positives").inc();
  }

  WorkItem item;
  item.id = dr.oid;
  item.start = dr.start;
  item.next = dr.start;
  item.iter_stack = dr.iter_stack.empty() ? std::vector<std::uint32_t>{1}
                                          : dr.iter_stack;
  if (store_.contains(item.id)) {
    ++p.span.items;
    p.exec->add_item(std::move(item));
  } else {
    route_remote(dr.qid, p, std::move(item));
  }
  drain_and_flush(dr.qid);
}

void SiteServer::handle_batch_deref(SiteId src, wire::BatchDerefRequest bd) {
  if (stale_own_query(bd.qid, src)) return;
  Participation& p = participation(bd.qid, bd.query);
  if (already_seen(p.seen, src, bd.msg_seq)) {  // see handle_deref
    ++p.span.duplicates;
    metrics().counter("dist.dedup_hits").inc();
    return;
  }
  p.last_activity = now_tick();
  note_engagement(p, bd.hop, bd.path);
  ds_on_computation_message(bd.qid, p, src);
  repay_weight(bd.qid, p, Weight::from_exponents(bd.weight));
  for (wire::DerefEntry& entry : bd.items) {
    WorkItem item;
    item.id = entry.oid;
    item.start = entry.start;
    item.next = entry.start;
    item.iter_stack = entry.iter_stack.empty() ? std::vector<std::uint32_t>{1}
                                               : std::move(entry.iter_stack);
    if (store_.contains(item.id)) {
      ++p.span.items;
      p.exec->add_item(std::move(item));
    } else {
      route_remote(bd.qid, p, std::move(item));
    }
  }
  drain_and_flush(bd.qid);
}

void SiteServer::handle_start(SiteId src, wire::StartQuery sq) {
  if (stale_own_query(sq.qid, src)) return;
  Participation& p = participation(sq.qid, sq.query);
  if (already_seen(p.seen, src, sq.msg_seq)) {  // see handle_deref
    ++p.span.duplicates;
    metrics().counter("dist.dedup_hits").inc();
    return;
  }
  p.last_activity = now_tick();
  note_engagement(p, sq.hop, sq.path);
  ds_on_computation_message(sq.qid, p, src);
  repay_weight(sq.qid, p, Weight::from_exponents(sq.weight));

  for (const ObjectId& id : sq.ids) {
    WorkItem item = WorkItem::initial(id);
    if (store_.contains(id)) {
      ++p.span.items;
      p.exec->add_item(std::move(item));
    } else {
      route_remote(sq.qid, p, std::move(item));
    }
  }
  if (!sq.local_set_name.empty()) p.exec->seed_local_set(sq.local_set_name);
  drain_and_flush(sq.qid);
}

void SiteServer::drain_and_flush(const wire::QueryId& qid) {
  auto it = contexts_.find(qid);
  if (it == contexts_.end()) return;
  Participation& p = it->second;
  const auto drain_t0 = now_tick();
  p.exec->drain();
  if (!p.shadow_execs.empty()) {
    // Joint fixpoint with the failover executions: draining one can feed
    // another (shadow pointer landing on our store, our pointer landing on
    // a suspect's shadow), so loop until every engine is simultaneously
    // idle. Keys are snapshotted per round — route_remote may grow the map
    // mid-drain when a chase reaches a second suspected primary.
    bool moved = true;
    while (moved) {
      moved = false;
      std::vector<SiteId> primaries;
      primaries.reserve(p.shadow_execs.size());
      for (const auto& [primary, se] : p.shadow_execs) {
        primaries.push_back(primary);
      }
      for (SiteId primary : primaries) {
        auto sit = p.shadow_execs.find(primary);
        if (sit != p.shadow_execs.end() && !sit->second->idle()) {
          sit->second->drain();
          moved = true;
        }
      }
      if (!p.exec->idle()) {
        p.exec->drain();
        moved = true;
      }
    }
  }
  const std::uint64_t drain_us = us_since(drain_t0);
  ++p.span.drains;
  p.span.drain_us += drain_us;
  metrics().histogram("dist.drain_us").observe(drain_us);
  flush_batches(qid, p);

  const Query& query = p.exec->query();
  std::vector<ObjectId> ids = p.exec->take_result_ids();
  std::vector<Retrieved> vals = p.exec->take_retrieved();
  for (auto& [primary, se] : p.shadow_execs) {
    // Failover results surface through this site's reply stream; the
    // originator dedups ids, so overlap with the primary's own earlier
    // answers is harmless.
    std::vector<ObjectId> sids = se->take_result_ids();
    ids.insert(ids.end(), sids.begin(), sids.end());
    for (Retrieved& r : se->take_retrieved()) vals.push_back(std::move(r));
  }
  p.span.results += ids.size() + vals.size();

  // count_only: results stay here, bound under the result set name; only
  // the count travels (paper Section 5's distributed-set optimisation).
  std::uint64_t local_count = 0;
  if (query.count_only()) {
    p.retained.insert(p.retained.end(), ids.begin(), ids.end());
    local_count = ids.size();
    if (!query.result_set_name().empty() && !ids.empty()) {
      store_.create_set(query.result_set_name(), p.retained);
    }
    ids.clear();
    vals.clear();
  }

  if (Origination* o = find_origination(qid)) {
    if (query.count_only()) {
      o->total_count += local_count;
      o->site_counts[store_.site()] += local_count;
    } else {
      for (const ObjectId& id : ids) {
        if (o->ids_seen.insert(id).second) o->ids.push_back(id);
      }
      for (Retrieved& r : vals) {
        o->values.push_back({r.slot, r.source, std::move(r.value)});
      }
    }
    o->last_activity = now_tick();
    maybe_finish(qid, *o);
    return;
  }

  // Participant: results + every bit of held weight go straight to the
  // originating site ("no intermediate site need be involved"). Results
  // stashed by an earlier failed send ride along.
  wire::ResultMessage rm;
  rm.qid = qid;
  rm.count_only = query.count_only();
  rm.local_count = local_count + p.pending_count;
  rm.ids = std::move(p.pending_ids);
  for (const ObjectId& id : ids) rm.ids.push_back(id);
  rm.values = std::move(p.pending_values);
  for (Retrieved& r : vals) {
    rm.values.push_back({r.slot, r.source, std::move(r.value)});
  }
  rm.dropped_items = p.dropped;
  rm.msg_seq = next_msg_seq_++;
  rm.spans = {p.span};
  Weight held = p.weight.release_all();
  rm.weight = held.exponents();
  p.pending_ids.clear();
  p.pending_values.clear();
  p.pending_count = 0;
  const wire::Message msg(std::move(rm));
  if (auto r = send_with_retry(qid.originator, msg, &p.span); !r.ok()) {
    // Keep everything: weight back in the participant's purse, results in
    // the pending stash. The TTL sweep re-attempts delivery, so a transient
    // outage loses nothing and a permanent one still terminates (the
    // originator's own TTL answers partial).
    HF_DEBUG << "site " << store_.site() << ": result to originator "
             << qid.originator << " failed: " << r.error().to_string();
    const auto& failed = std::get<wire::ResultMessage>(msg);
    p.weight.receive(std::move(held));
    p.pending_ids = failed.ids;
    p.pending_values = failed.values;
    p.pending_count = failed.local_count;
  } else {
    // D-S: result messages are tree messages too — the originator acks
    // them, which is what keeps termination from racing ahead of results.
    ds_on_send(p);
    p.dropped = 0;  // reported
  }
  ds_try_settle(qid, p);
}

void SiteServer::handle_result(SiteId src, wire::ResultMessage rm) {
  Origination* o = find_origination(rm.qid);
  if (o == nullptr) {
    // Stale result for a finished (or expired) query: the sender evidently
    // missed QueryDone — re-announce it so the participant context closes,
    // but merge nothing.
    if (src != store_.site()) {
      (void)endpoint_->send(src, wire::QueryDone{rm.qid});
    }
    return;
  }
  // Dedup BEFORE weight/count/ack bookkeeping: a replayed ResultMessage
  // would double-count local_count, re-insert values, over-repay weight
  // (Weight::add past one throws), and under D-S cancel an ack the sender
  // is still owed.
  if (already_seen(o->seen, src, rm.msg_seq)) {
    metrics().counter("dist.dedup_hits").inc();
    return;
  }
  o->last_activity = now_tick();
  // Merge piggybacked span snapshots. Field-wise max keeps this idempotent,
  // so even a duplicate that slipped past msg_seq dedup (e.g. a retry with
  // a fresh seq) cannot inflate the trace.
  for (const TraceSpan& s : rm.spans) merge_into(o->spans[s.site], s);
  if (using_ds()) {
    (void)send_with_retry(src, wire::TermAck{rm.qid, next_msg_seq_++});
  }
  o->involved.insert(src);
  o->term.repay(Weight::from_exponents(rm.weight));
  o->dropped_items += rm.dropped_items;
  if (rm.count_only) {
    o->total_count += rm.local_count;
    o->site_counts[src] += rm.local_count;
  } else {
    for (const ObjectId& id : rm.ids) {
      if (o->ids_seen.insert(id).second) o->ids.push_back(id);
    }
    for (auto& v : rm.values) o->values.push_back(std::move(v));
  }
  maybe_finish(rm.qid, *o);
}

void SiteServer::handle_client_request(SiteId src, wire::ClientRequest cr) {
  auto reply_error = [&](const Error& err) {
    wire::ClientReply reply;
    reply.client_seq = cr.client_seq;
    reply.ok = false;
    reply.error = err.to_string();
    (void)endpoint_->send(src, std::move(reply));
  };

  if (auto v = cr.query.validate(); !v.ok()) {
    reply_error(v.error());
    return;
  }
  // Simplify once at origination: every subsequent message (one per remote
  // pointer!) carries the rewritten, smaller body.
  if (options_.rewrite_queries) cr.query = rewrite_query(cr.query);

  metrics().counter("dist.queries_originated").inc();
  const wire::QueryId qid{store_.site(), next_query_seq_++};
  Origination o;
  o.query = cr.query;
  o.client = src;
  o.client_seq = cr.client_seq;
  o.last_activity = now_tick();
  o.started = o.last_activity;
  originated_.emplace(qid, std::move(o));
  Origination& origin = originated_.at(qid);
  Participation& p = participation(qid, cr.query);
  // The client request engages the originator at hop 0; every computation
  // message fanned out from here starts the path at this site.
  note_engagement(p, 0, {});

  // Seed the initial set. A named set that a previous count_only query left
  // *distributed* is seeded by fanning StartQuery to the sites holding
  // portions; anything else resolves locally (remote members of a local set
  // travel as ordinary dereferences).
  bool seeded = false;
  const std::string& set_name = cr.query.initial_set_name();
  if (!set_name.empty()) {
    auto dit = distributed_sets_.find(set_name);
    if (dit != distributed_sets_.end()) {
      for (SiteId s : dit->second) {
        if (s == store_.site()) {
          p.exec->seed_local_set(set_name);
          continue;
        }
        Weight w = borrow_weight(qid, p);
        wire::StartQuery sq;
        sq.qid = qid;
        sq.query = cr.query;
        sq.local_set_name = set_name;
        sq.weight = w.exponents();
        sq.msg_seq = next_msg_seq_++;
        sq.hop = 1;
        sq.path = p.out_path;
        if (auto r = send_with_retry(s, wire::Message(std::move(sq)), &p.span);
            !r.ok()) {
          repay_weight(qid, p, std::move(w));
          ++origin.dropped_items;  // that site's whole portion is lost
          continue;
        }
        ds_on_send(p);
        ++p.span.forwarded;
        origin.involved.insert(s);
      }
      seeded = true;
    }
  }
  if (!seeded) {
    if (auto r = p.exec->seed_initial(); !r.ok()) {
      reply_error(r.error());
      discard_context(qid);
      originated_.erase(qid);
      return;
    }
  }
  drain_and_flush(qid);
}

void SiteServer::maybe_finish(const wire::QueryId& qid, Origination& o,
                              bool force) {
  if (o.replied) return;
  if (!force) {
    auto cit = contexts_.find(qid);
    if (cit == contexts_.end()) return;
    if (!cit->second.executions_idle()) return;
    const bool quiescent = using_ds() ? cit->second.ds_deficit == 0
                                      : o.term.all_weight_home();
    if (!quiescent) return;
  }
  o.replied = true;

  const Query& query = o.query;
  if (!query.result_set_name().empty()) {
    if (query.count_only()) {
      std::vector<SiteId> sites;
      for (const auto& [site, count] : o.site_counts) {
        if (count > 0) sites.push_back(site);
      }
      distributed_sets_[query.result_set_name()] = std::move(sites);
    } else {
      store_.create_set(query.result_set_name(), o.ids);
    }
  }

  // Merge the originator's own (still-live) span into the trace before the
  // partial verdict: its replica_lag flag feeds that verdict like every
  // participant's does.
  if (auto cit = contexts_.find(qid); cit != contexts_.end()) {
    merge_into(o.spans[store_.site()], cit->second.span);
  }
  bool replica_lagged = false;
  for (const auto& [site, span] : o.spans) {
    if (span.replica_lag > 0) replica_lagged = true;
  }

  wire::ClientReply reply;
  reply.client_seq = o.client_seq;
  reply.ok = true;
  reply.ids = o.ids;
  reply.values = o.values;
  reply.count_only = query.count_only();
  reply.total_count = query.count_only() ? o.total_count : o.ids.size();
  // A forced finish means termination never arrived — some site may still
  // hold unreported results, so the answer is partial even when no loss
  // was positively observed. A lagging replica answer (DESIGN.md §18) is
  // the same epistemic state: nothing provably wrong arrived, but
  // acknowledged mutations may be missing.
  reply.partial = force || o.dropped_items > 0 || replica_lagged;
  reply.dropped_items = o.dropped_items;
  if (force) metrics().counter("dist.ttl_force_finish").inc();
  if (reply.partial) metrics().counter("dist.queries_partial").inc();

  // Assemble the trace: participant snapshots merged so far, plus the
  // originator's own span, sorted by site for the client.
  reply.qid = qid;
  reply.elapsed_us = us_since(o.started);
  for (const auto& [site, span] : o.spans) reply.spans.push_back(span);
  std::sort(reply.spans.begin(), reply.spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) { return a.site < b.site; });

  if (o.client != kNoSite) {
    (void)send_with_retry(o.client, wire::Message(std::move(reply)));
  }

  // Global termination: tell every involved site to discard its context.
  // QueryDone is idempotent (it only ever discards), so retries are safe
  // and a site that misses it falls back to its context TTL.
  for (SiteId s : o.involved) {
    if (s == store_.site()) continue;
    (void)send_with_retry(s, wire::QueryDone{qid});
  }
  discard_context(qid);
  originated_.erase(qid);
}

void SiteServer::handle_done(const wire::QueryDone& qd) { discard_context(qd.qid); }

void SiteServer::handle_move_command(SiteId src, const wire::MoveCommand& mc) {
  // Forwarded commands carry the client's address explicitly; a command
  // straight from the client may predate that field being set.
  const SiteId reply_to = mc.reply_to != kNoSite ? mc.reply_to : src;
  auto reply_error = [&](const std::string& message) {
    wire::MoveReply reply;
    reply.client_seq = mc.client_seq;
    reply.ok = false;
    reply.error = message;
    (void)endpoint_->send(reply_to, std::move(reply));
  };

  if (!store_.contains(mc.id)) {
    // Stale hint: chase the object like a dereference would, with a fuse.
    if (mc.hops_left == 0) {
      reply_error("object not found (forwarding fuse exhausted)");
      return;
    }
    auto hop = names_.next_hop(mc.id);
    if (!hop.has_value()) {
      reply_error("object " + mc.id.to_string() + " does not exist");
      return;
    }
    wire::MoveCommand forwarded = mc;
    forwarded.reply_to = reply_to;
    --forwarded.hops_left;
    if (auto r = endpoint_->send(*hop, forwarded); !r.ok()) {
      reply_error("forwarding failed: " + r.error().to_string());
    }
    return;
  }

  if (mc.to == store_.site()) {  // already home: trivially done
    wire::MoveReply reply;
    reply.client_seq = mc.client_seq;
    reply.now_at = store_.site();
    (void)endpoint_->send(reply_to, std::move(reply));
    return;
  }

  // Hint first, then take: a dereference arriving in between still finds a
  // forwarding route (the brief not-yet-installed window at the new home
  // degrades to partial results, never a hang).
  names_.record_departure(mc.id, mc.to);
  auto obj = store_.take(mc.id);
  if (!obj.has_value()) {
    reply_error("object vanished during move");
    return;
  }
  wire::MoveData md;
  md.object = std::move(*obj);
  md.reply_to = reply_to;
  md.client_seq = mc.client_seq;
  // Sent by copy so the object can be reinstalled if the send fails.
  if (auto r = endpoint_->send(mc.to, md); !r.ok()) {
    store_.put(std::move(md.object));
    names_.forget_hint(mc.id);
    reply_error("destination unreachable: " + r.error().to_string());
  }
}

void SiteServer::handle_move_data(wire::MoveData md) {
  const ObjectId id = md.object.id();
  store_.put(std::move(md.object));
  if (id.birth_site == store_.site()) {
    names_.record_location(id, store_.site());
  } else {
    (void)endpoint_->send(id.birth_site,
                          wire::LocationUpdate{id, store_.site()});
  }
  // We are the object's home now; drop any stale departure hint.
  names_.forget_hint(id);

  wire::MoveReply reply;
  reply.client_seq = md.client_seq;
  reply.now_at = store_.site();
  (void)endpoint_->send(md.reply_to, std::move(reply));
}

void SiteServer::handle_location_update(const wire::LocationUpdate& lu) {
  names_.record_location(lu.id, lu.now_at);
}

void SiteServer::discard_context(const wire::QueryId& qid) {
  auto it = contexts_.find(qid);
  if (it == contexts_.end()) return;
  // Snapshot before taking stats_mu_: exec->stats() acquires the engine's
  // own stats lock, and stats_mu_ is a leaf (DESIGN.md §10 rule 2).
  EngineStats finished = it->second.exec->stats();
  for (auto& [primary, se] : it->second.shadow_execs) {
    finished += se->stats();
  }
  {
    MutexLock lock(stats_mu_);
    total_stats_ += finished;
  }
  contexts_.erase(it);
}

}  // namespace hyperfile
