#include "dist/cluster.hpp"

#include "naming/persist.hpp"
#include "store/snapshot.hpp"

namespace hyperfile {
namespace {

std::string site_snapshot_path(const std::string& dir, SiteId site) {
  return dir + "/site_" + std::to_string(site) + ".hfs";
}

std::string site_names_path(const std::string& dir, SiteId site) {
  return dir + "/site_" + std::to_string(site) + ".names";
}

}  // namespace

Cluster::Cluster(std::size_t sites, SiteServerOptions options,
                 std::size_t clients, EndpointDecorator decorate)
    : net_(sites + clients),
      options_(std::move(options)),
      decorate_(std::move(decorate)) {
  // Summaries enabled with no explicit peer list: advertise to the whole
  // deployment. Stored in options_ so restart_site rebuilds keep it.
  if (options_.summary_interval > Duration(0) &&
      options_.summary_peers.empty()) {
    for (std::size_t i = 0; i < sites; ++i) {
      options_.summary_peers.push_back(static_cast<SiteId>(i));
    }
  }
  // Replication enabled with no explicit assignment: ring — each site's WAL
  // ships to its successor, so one standby covers every primary. Stored in
  // options_ so restart_site rebuilds keep the same topology.
  if (options_.replication_interval > Duration(0) &&
      options_.replica_assignment.empty() && sites > 1) {
    for (std::size_t i = 0; i < sites; ++i) {
      options_.replica_assignment[static_cast<SiteId>(i)] =
          static_cast<SiteId>((i + 1) % sites);
    }
  }
  servers_.reserve(sites);
  for (std::size_t i = 0; i < sites; ++i) {
    const SiteId site = static_cast<SiteId>(i);
    std::unique_ptr<MessageEndpoint> ep = net_.endpoint(site);
    if (decorate_) ep = decorate_(site, std::move(ep));
    servers_.push_back(std::make_unique<SiteServer>(
        std::move(ep), SiteStore(site), options_));
  }
  clients_.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    clients_.push_back(std::make_unique<Client>(
        net_.endpoint(static_cast<SiteId>(sites + c)), /*default_server=*/0));
  }
}

Cluster::~Cluster() { stop(); }

void Cluster::start() {
  for (auto& s : servers_) s->start();
}

void Cluster::stop() {
  for (auto& s : servers_) s->stop();
  net_.shutdown();
}

Result<void> Cluster::move_object(const ObjectId& id, SiteId from, SiteId to) {
  if (from >= servers_.size() || to >= servers_.size()) {
    return make_error(Errc::kNotFound, "no such site");
  }
  if (servers_[from]->running() || servers_[to]->running()) {
    return make_error(Errc::kInvalidArgument,
                      "move_object requires both sites stopped");
  }
  auto obj = servers_[from]->store().take(id);
  if (!obj.has_value()) {
    return make_error(Errc::kNotFound,
                      "object " + id.to_string() + " not at site " +
                          std::to_string(from));
  }
  servers_[to]->store().put(std::move(*obj));
  // Departure hint at the old home; authoritative record at the birth site.
  servers_[from]->names().record_departure(id, to);
  servers_[id.birth_site]->names().record_location(id, to);
  return {};
}

Result<void> Cluster::restart_site(SiteId site) {
  if (site >= servers_.size()) {
    return make_error(Errc::kNotFound, "no such site");
  }
  if (servers_[site]->running()) {
    return make_error(Errc::kInvalidArgument,
                      "restart_site: site " + std::to_string(site) +
                          " is still running (kill_site it first)");
  }
  // Fresh incarnation: reopen the mailbox (pre-crash traffic is gone — a
  // rebooted process has an empty socket buffer), rebuild the endpoint with
  // the original decorator, and hand the server an *empty* store so that
  // whatever it serves afterwards was recovered from checkpoint + WAL.
  net_.reopen_endpoint(site);
  std::unique_ptr<MessageEndpoint> ep = net_.endpoint(site);
  if (decorate_) ep = decorate_(site, std::move(ep));
  servers_[site] = std::make_unique<SiteServer>(std::move(ep),
                                                SiteStore(site), options_);
  servers_[site]->start();
  return {};
}

Result<void> Cluster::save_snapshots(const std::string& dir) {
  for (SiteId s = 0; s < static_cast<SiteId>(servers_.size()); ++s) {
    SiteServer& server = *servers_[s];
    // run_exclusive executes inline when the site is stopped and between
    // messages on the event loop when it is running — either way the store
    // is quiescent while we serialize it.
    auto r = server.run_exclusive([&]() -> Result<void> {
      auto sr = save_snapshot(server.store(), site_snapshot_path(dir, s));
      if (!sr.ok()) return sr;
      return save_registry(server.names(), site_names_path(dir, s));
    });
    if (!r.ok()) return r;
  }
  return {};
}

Result<void> Cluster::load_snapshots(const std::string& dir) {
  for (const auto& server : servers_) {
    if (server->running()) {
      return make_error(Errc::kInvalidArgument,
                        "load_snapshots requires a stopped cluster");
    }
  }
  for (SiteId s = 0; s < static_cast<SiteId>(servers_.size()); ++s) {
    auto loaded = load_snapshot(site_snapshot_path(dir, s));
    if (!loaded.ok()) return loaded.error();
    if (loaded.value().site() != s) {
      return make_error(Errc::kInvalidArgument,
                        "snapshot site id mismatch at " +
                            site_snapshot_path(dir, s));
    }
    servers_[s]->store() = std::move(loaded).value();
    // Location knowledge: prefer the persisted registry (it remembers
    // migrations); fall back to rebuilding birth records for deployments
    // saved without one.
    auto registry = load_registry(site_names_path(dir, s));
    if (registry.ok()) {
      if (registry.value().self() != s) {
        return make_error(Errc::kInvalidArgument,
                          "registry site id mismatch at " +
                              site_names_path(dir, s));
      }
      servers_[s]->names() = std::move(registry).value();
    }
    for (const ObjectId& id : servers_[s]->store().all_ids()) {
      servers_[s]->names().register_birth(id);
    }
  }
  return {};
}

EngineStats Cluster::engine_stats() const {
  EngineStats total;
  for (const auto& s : servers_) total += s->engine_stats();
  return total;
}

}  // namespace hyperfile
