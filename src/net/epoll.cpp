#include "net/epoll.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hpp"
#include "common/metrics.hpp"

namespace hyperfile {
namespace {

/// Frames coalesced into one writev(): enough to amortize the syscall over
/// a drain burst while keeping the iovec array on the stack.
constexpr int kWritevBatch = 64;

constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // same cap as net/tcp

Error errno_error(const std::string& what) {
  return make_error(Errc::kIo, what + ": " + std::strerror(errno));
}

std::uint32_t read_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

}  // namespace

EpollNetwork::EpollNetwork(SiteId self, std::vector<TcpPeer> peers,
                           EpollOptions options)
    : self_(self), options_(options), peers_(std::move(peers)) {}

Result<std::unique_ptr<EpollNetwork>> EpollNetwork::create(
    SiteId self, std::vector<TcpPeer> peers, EpollOptions options) {
  std::unique_ptr<EpollNetwork> net(
      new EpollNetwork(self, std::move(peers), options));
  if (auto r = net->start(); !r.ok()) return r.error();
  return net;
}

EpollNetwork::~EpollNetwork() {
  shutdown();
  // Safety net for conns created by a send() racing shutdown: they were
  // pushed for adoption after the loop exited, so the loop never closed
  // their fds. Claimed under pending_mu_, closed outside it (leaf order).
  std::vector<ConnPtr> orphans;
  {
    MutexLock lock(pending_mu_);
    orphans.swap(pending_adopt_);
    pending_flush_.clear();
    pending_close_.clear();
  }
  for (auto& conn : orphans) {
    MutexLock conn_lock(conn->mu);
    if (!conn->dead) {
      conn->dead = true;
      ::close(conn->fd);
    }
  }
}

Result<void> EpollNetwork::start() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return errno_error("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return errno_error("eventfd");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return errno_error("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  const TcpPeer self_peer = [&] {
    MutexLock lock(conn_mu_);
    return self_ < peers_.size() ? peers_[self_] : TcpPeer{"127.0.0.1", 0};
  }();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(self_peer.port);
  if (::inet_pton(AF_INET, self_peer.host.c_str(), &addr.sin_addr) != 1) {
    return make_error(Errc::kInvalidArgument,
                      "bad listen host " + self_peer.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    return errno_error("bind " + std::to_string(self_peer.port));
  }
  if (::listen(listen_fd_, 128) < 0) return errno_error("listen");
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return errno_error("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return errno_error("epoll_ctl(wake)");
  }
  loop_thread_ = std::thread([this] { run_loop(); });
  return {};
}

void EpollNetwork::wake() {
  const std::uint64_t one = 1;
  // eventfd writes cannot short-write; failure (full counter) still wakes.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EpollNetwork::run_loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load()) {
    // hfverify: allow-blocking(epoll_wait): the event loop's one sanctioned
    // park — bounded at 200ms so stopping_ is honored, woken early by the
    // eventfd on every cross-thread handoff.
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      HF_ERROR << "epoll site " << self_ << ": epoll_wait: "
               << std::strerror(errno);
      break;
    }
    drain_pending();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t junk;
        while (::read(wake_fd_, &junk, sizeof junk) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      handle_event(fd, events[i].events);
    }
  }
  // Loop exit: every socket is loop-owned, so close them here. Senders
  // racing shutdown see `dead` under the conn lock, never a stale fd.
  {
    std::vector<ConnPtr> adopt;
    {
      MutexLock lock(pending_mu_);
      adopt.swap(pending_adopt_);
      pending_flush_.clear();
      pending_close_.clear();
    }
    for (auto& conn : adopt) {
      MutexLock lock(conn->mu);
      conn->dead = true;
      ::close(conn->fd);
    }
  }
  for (auto& [fd, conn] : conns_by_fd_) {
    {
      MutexLock lock(conn->mu);
      conn->dead = true;
      conn->sendq.clear();
      conn->sendq_bytes = 0;
    }
    ::close(fd);
  }
  conns_by_fd_.clear();
  // The listen/wake/epoll fds are NOT closed here: a concurrent shutdown()
  // caller may still be inside wake()'s write to the eventfd, and closing
  // under it would let a reused fd number misdirect that write. shutdown()
  // closes all three strictly after joining this thread.
}

void EpollNetwork::drain_pending() {
  std::vector<ConnPtr> adopt;
  std::vector<ConnPtr> flush;
  std::vector<ConnPtr> close_list;
  {
    MutexLock lock(pending_mu_);
    adopt.swap(pending_adopt_);
    flush.swap(pending_flush_);
    close_list.swap(pending_close_);
  }
  for (auto& conn : adopt) adopt_conn(conn);
  for (auto& conn : flush) {
    // Clear before flushing: a sender enqueuing right now re-queues the
    // conn rather than losing its wakeup.
    conn->flush_queued.store(false);
    auto it = conns_by_fd_.find(conn->fd);
    if (it == conns_by_fd_.end() || it->second != conn) continue;
    flush_conn(conn);
  }
  for (auto& conn : close_list) {
    auto it = conns_by_fd_.find(conn->fd);
    if (it == conns_by_fd_.end() || it->second != conn) continue;
    teardown_conn(conn, "peer readdressed");
  }
}

void EpollNetwork::adopt_conn(const ConnPtr& conn) {
  bool have_data = false;
  {
    MutexLock lock(conn->mu);
    if (conn->dead) return;
    have_data = !conn->sendq.empty();
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (conn->connecting || have_data) ev.events |= EPOLLOUT;
  ev.data.fd = conn->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev) < 0) {
    teardown_conn(conn, std::string("epoll_ctl add: ") + std::strerror(errno));
    return;
  }
  conn->want_write = (ev.events & EPOLLOUT) != 0;
  conns_by_fd_[conn->fd] = conn;
}

void EpollNetwork::accept_ready() {
  static Counter& accepts = metrics().counter("net.epoll.accepts");
  for (;;) {
    // hfverify: allow-blocking(accept): the listener is O_NONBLOCK; this
    // returns EAGAIN instead of parking the loop.
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or listener closed at shutdown
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    accepts.inc();
    adopt_conn(std::make_shared<Conn>(fd, /*connecting=*/false));
  }
}

void EpollNetwork::handle_event(int fd, std::uint32_t events) {
  auto it = conns_by_fd_.find(fd);
  if (it == conns_by_fd_.end()) return;  // torn down earlier in this batch
  ConnPtr conn = it->second;             // keep alive across teardown

  if (conn->connecting && (events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) {
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      teardown_conn(conn, std::string("connect: ") + std::strerror(err));
      return;
    }
    conn->connecting = false;
    metrics().counter("net.epoll.connects").inc();
  }
  if ((events & EPOLLIN) != 0) {
    // Drain inbound first: EPOLLHUP can arrive together with the peer's
    // final frames, which must not be lost to the teardown below.
    read_conn(conn);
    auto again = conns_by_fd_.find(fd);
    if (again == conns_by_fd_.end() || again->second != conn) return;
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    teardown_conn(conn, err != 0 ? std::strerror(err) : "peer hung up");
    return;
  }
  if ((events & EPOLLOUT) != 0 && !conn->connecting) flush_conn(conn);
}

void EpollNetwork::read_conn(const ConnPtr& conn) {
  static Counter& frame_drops = metrics().counter("net.epoll.frame_drops");
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      teardown_conn(conn, std::string("recv: ") + std::strerror(errno));
      return;
    }
    if (n == 0) {
      teardown_conn(conn, "peer closed");
      return;
    }
    conn->rdbuf.insert(conn->rdbuf.end(), chunk, chunk + n);
    std::size_t off = 0;
    while (conn->rdbuf.size() - off >= 4) {
      const std::uint32_t len = read_be32(conn->rdbuf.data() + off);
      if (len > kMaxFrameBytes) {
        // A lying length prefix has no resync point; the connection dies
        // (loudly), same as the threaded backend.
        frame_drops.inc();
        HF_WARN << "epoll site " << self_ << ": oversized frame (" << len
                << " bytes) from peer "
                << (conn->last_src == kNoSite
                        ? std::string("?")
                        : std::to_string(conn->last_src))
                << " fd " << conn->fd << "; closing connection";
        teardown_conn(conn, "oversized frame");
        return;
      }
      if (conn->rdbuf.size() - off < 4 + std::size_t{len}) break;
      auto env = wire::decode_envelope(
          std::span<const std::uint8_t>(conn->rdbuf.data() + off + 4, len));
      off += 4 + std::size_t{len};
      if (!env.ok()) {
        // The length prefix was honest, so framing is intact: drop just
        // this frame and keep the connection.
        frame_drops.inc();
        HF_WARN << "epoll site " << self_
                << ": dropping undecodable frame from peer "
                << (conn->last_src == kNoSite
                        ? std::string("?")
                        : std::to_string(conn->last_src))
                << " fd " << conn->fd << ": " << env.error().to_string();
        continue;
      }
      if (env.value().src != conn->last_src) {
        conn->last_src = env.value().src;
        MutexLock lock(conn_mu_);
        learned_[conn->last_src] = conn;
      }
      inbox_.push(std::move(env).value());
    }
    if (off > 0) {
      conn->rdbuf.erase(conn->rdbuf.begin(),
                        conn->rdbuf.begin() + static_cast<std::ptrdiff_t>(off));
    }
  }
}

void EpollNetwork::flush_conn(const ConnPtr& conn) {
  if (conn->connecting) {
    set_want_write(conn, true);
    return;
  }
  for (;;) {
    iovec iov[kWritevBatch];
    int iovcnt = 0;
    {
      // Senders only push_back; the front segment and offsets are
      // loop-owned, and deque growth never moves existing elements — so
      // the iovec pointers stay valid after the lock drops.
      MutexLock lock(conn->mu);
      std::size_t skip = conn->front_off;
      for (auto it = conn->sendq.begin();
           it != conn->sendq.end() && iovcnt < kWritevBatch; ++it) {
        iov[iovcnt].iov_base =
            const_cast<std::uint8_t*>(it->data() + skip);  // NOLINT
        iov[iovcnt].iov_len = it->size() - skip;
        skip = 0;
        ++iovcnt;
      }
    }
    if (iovcnt == 0) {
      set_want_write(conn, false);
      return;
    }
    const ssize_t n = ::writev(conn->fd, iov, iovcnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        set_want_write(conn, true);
        return;
      }
      teardown_conn(conn, std::string("writev: ") + std::strerror(errno));
      return;
    }
    MutexLock lock(conn->mu);
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      wire::Bytes& front = conn->sendq.front();
      const std::size_t avail = front.size() - conn->front_off;
      if (left >= avail) {
        left -= avail;
        conn->sendq_bytes -= front.size();
        conn->sendq.pop_front();
        conn->front_off = 0;
      } else {
        conn->front_off += left;
        left = 0;
      }
    }
  }
}

void EpollNetwork::set_want_write(const ConnPtr& conn, bool want) {
  if (conn->want_write == want) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0);
  ev.data.fd = conn->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->want_write = want;
  }
}

void EpollNetwork::teardown_conn(const ConnPtr& conn,
                                 const std::string& reason) {
  static Counter& dropped = metrics().counter("net.epoll.dropped_frames");
  std::size_t lost = 0;
  {
    MutexLock lock(conn->mu);
    if (conn->dead) return;
    conn->dead = true;
    lost = conn->sendq.size();
    conn->sendq.clear();
    conn->sendq_bytes = 0;
  }
  if (lost > 0) dropped.inc(lost);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  if (auto it = conns_by_fd_.find(conn->fd);
      it != conns_by_fd_.end() && it->second == conn) {
    conns_by_fd_.erase(it);
  }
  ::close(conn->fd);
  if (!stopping_.load()) {
    // Purge every route through this connection and tombstone the sites it
    // served: the next send() to each fails kIo (failure made visible at
    // the retry boundary), the one after reconnects.
    MutexLock lock(conn_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second == conn) {
        failed_[it->first] = reason;
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = learned_.begin(); it != learned_.end();) {
      if (it->second == conn) {
        failed_[it->first] = reason;
        it = learned_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (lost > 0) {
    HF_WARN << "epoll site " << self_ << ": connection fd " << conn->fd
            << " (peer "
            << (conn->last_src == kNoSite ? std::string("?")
                                          : std::to_string(conn->last_src))
            << ") down: " << reason << "; dropped " << lost
            << " queued frames";
  } else {
    HF_DEBUG << "epoll site " << self_ << ": connection fd " << conn->fd
             << " down: " << reason;
  }
}

Result<void> EpollNetwork::send(SiteId to, wire::Message message) {
  static Counter& busy_rejects = metrics().counter("net.epoll.busy_rejects");
  const std::size_t tag = message.index();
  static thread_local wire::Encoder enc;
  wire::encode_envelope(wire::Envelope{self_, to, std::move(message)}, enc);

  if (to == self_) {
    auto env = wire::decode_envelope(enc.bytes());
    if (!env.ok()) return env.error();
    if (!inbox_.push(std::move(env).value())) {
      return make_error(Errc::kClosed,
                        "endpoint " + std::to_string(self_) + " shut down");
    }
    MutexLock lock(stats_mu_);
    stats_.record_tag(tag, enc.size());
    return {};
  }

  const wire::Bytes& body = enc.bytes();
  wire::Bytes frame;
  frame.reserve(4 + body.size());
  frame.push_back(static_cast<std::uint8_t>(body.size() >> 24));
  frame.push_back(static_cast<std::uint8_t>(body.size() >> 16));
  frame.push_back(static_cast<std::uint8_t>(body.size() >> 8));
  frame.push_back(static_cast<std::uint8_t>(body.size()));
  frame.insert(frame.end(), body.begin(), body.end());
  const std::size_t frame_size = frame.size();

  ConnPtr conn;
  bool adopt = false;
  {
    MutexLock lock(conn_mu_);
    if (stopping_.load()) {
      return make_error(Errc::kClosed,
                        "endpoint " + std::to_string(self_) + " shut down");
    }
    if (auto f = failed_.find(to); f != failed_.end()) {
      // Consume the tombstone: report the asynchronous failure exactly
      // once, loudly; the caller's retry reconnects.
      Error err = make_error(
          Errc::kIo, "connection to site " + std::to_string(to) + " failed (" +
                         f->second + "); queued frames were dropped");
      failed_.erase(f);
      return err;
    }
    if (auto it = conns_.find(to); it != conns_.end()) {
      conn = it->second;
    } else if (to < peers_.size()) {
      const TcpPeer& peer = peers_[to];
      const int fd =
          ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (fd < 0) return errno_error("socket");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(peer.port);
      if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return make_error(Errc::kInvalidArgument, "bad host " + peer.host);
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      // Non-blocking connect: EINPROGRESS now, completion (or refusal) is
      // an EPOLLOUT event on the loop. Holding conn_mu_ here is fine —
      // nothing sleeps.
      // hfverify: allow-blocking(connect): O_NONBLOCK socket — returns
      // EINPROGRESS immediately instead of waiting for the handshake.
      const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                               sizeof addr);
      if (rc < 0 && errno != EINPROGRESS) {
        ::close(fd);
        return errno_error("connect to site " + std::to_string(to));
      }
      conn = std::make_shared<Conn>(fd, /*connecting=*/rc < 0);
      conns_[to] = conn;
      adopt = true;
    } else if (auto lit = learned_.find(to); lit != learned_.end()) {
      conn = lit->second;
    } else {
      return make_error(Errc::kNotFound,
                        "no such site " + std::to_string(to));
    }
  }
  if (adopt) {
    MutexLock lock(pending_mu_);
    pending_adopt_.push_back(conn);
  }
  {
    MutexLock lock(conn->mu);
    if (conn->dead) {
      if (adopt) wake();  // the loop still owns the fd cleanup
      return make_error(Errc::kIo, "connection to site " + std::to_string(to) +
                                       " closed");
    }
    if (conn->sendq.size() >= options_.max_queue_frames) {
      // Backpressure, not blocking and not silent loss: the queue bound
      // holds, the caller hears kBusy and retries after the peer drains.
      busy_rejects.inc();
      if (adopt) wake();
      return make_error(Errc::kBusy,
                        "send queue to site " + std::to_string(to) + " full (" +
                            std::to_string(conn->sendq.size()) +
                            " frames); retry after draining");
    }
    conn->sendq_bytes += frame_size;
    conn->sendq.push_back(std::move(frame));
  }
  if (!conn->flush_queued.exchange(true)) {
    MutexLock lock(pending_mu_);
    pending_flush_.push_back(conn);
  }
  wake();
  MutexLock lock(stats_mu_);
  stats_.record_tag(tag, frame_size);
  return {};
}

std::optional<wire::Envelope> EpollNetwork::recv(Duration timeout) {
  return inbox_.pop_wait(timeout);
}

void EpollNetwork::update_peer(SiteId site, TcpPeer peer) {
  ConnPtr old;
  {
    MutexLock lock(conn_mu_);
    if (site >= peers_.size()) return;
    peers_[site] = std::move(peer);
    failed_.erase(site);  // fresh address, fresh start
    if (auto it = conns_.find(site); it != conns_.end()) {
      old = it->second;
      conns_.erase(it);
    }
  }
  if (old != nullptr) {
    {
      MutexLock lock(pending_mu_);
      pending_close_.push_back(std::move(old));
    }
    wake();
  }
}

void EpollNetwork::shutdown() {
  if (stopping_.exchange(true)) return;
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Loop infrastructure closes only after the join: the loop may notice
  // stopping_ via its epoll timeout while wake()'s write is still in
  // flight, and close-under-write hands the fd number to whoever opens
  // next. Also covers start() failing before the thread ever spawned.
  // (The members stay as-is: clearing them would race wake()'s unlocked
  // read, and this body runs exactly once — the exchange above gates it.)
  for (const int fd : {listen_fd_, wake_fd_, epoll_fd_}) {
    if (fd >= 0) ::close(fd);
  }
  inbox_.close();
  MutexLock lock(conn_mu_);
  conns_.clear();
  learned_.clear();
  failed_.clear();
}

NetworkStats EpollNetwork::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

bool EpollNetwork::has_route(SiteId to) const {
  MutexLock lock(conn_mu_);
  return conns_.count(to) != 0 || learned_.count(to) != 0;
}

}  // namespace hyperfile
