#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iterator>

#include "common/logging.hpp"
#include "common/metrics.hpp"

namespace hyperfile {
namespace {

Error errno_error(const std::string& what) {
  return make_error(Errc::kIo, what + ": " + std::strerror(errno));
}

/// Write all of `data`, handling short writes and EINTR.
Result<void> write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("send");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return {};
}

/// Read exactly `len` bytes; false on clean EOF at a frame boundary.
Result<bool> read_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF
      return make_error(Errc::kIo, "connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpNetwork::TcpNetwork(SiteId self, std::vector<TcpPeer> peers)
    : self_(self), peers_(std::move(peers)) {}

Result<std::unique_ptr<TcpNetwork>> TcpNetwork::create(SiteId self,
                                                       std::vector<TcpPeer> peers) {
  std::unique_ptr<TcpNetwork> net(new TcpNetwork(self, std::move(peers)));
  if (auto r = net->start_listener(); !r.ok()) return r.error();
  return net;
}

TcpNetwork::~TcpNetwork() { shutdown(); }

Result<void> TcpNetwork::start_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return errno_error("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  // Endpoints outside the static table (clients) listen on an ephemeral
  // port; peers reach them via learned routes only.
  const TcpPeer self_peer = [&] {
    MutexLock lock(conn_mu_);
    return self_ < peers_.size() ? peers_[self_] : TcpPeer{"127.0.0.1", 0};
  }();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(self_peer.port);
  if (::inet_pton(AF_INET, self_peer.host.c_str(), &addr.sin_addr) != 1) {
    return make_error(Errc::kInvalidArgument,
                      "bad listen host " + self_peer.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    return errno_error("bind " + std::to_string(self_peer.port));
  }
  if (::listen(listen_fd_, 64) < 0) return errno_error("listen");

  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return {};
}

void TcpNetwork::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    metrics().counter("net.tcp.accepts").inc();
    spawn_reader(std::make_shared<Conn>(fd));
    // Churning clients (connect, talk, disconnect) leave one exited reader
    // behind per connection; reap them here so an accepting server's fd and
    // thread counts track *live* connections, not lifetime connections.
    reap_readers();
  }
}

void TcpNetwork::spawn_reader(ConnPtr conn) {
  MutexLock lock(readers_mu_);
  auto reader = std::make_unique<Reader>(std::move(conn));
  Reader* r = reader.get();
  r->thread = std::thread([this, r] {
    // hfverify: allow-lockorder(thread-entry): this body runs on the spawned
    // reader thread, never under the readers_mu_ held by spawn_reader.
    reader_loop(r->conn);
    // `done` is the very last touch: once visible, the thread takes no
    // locks and is join-able without blocking.
    r->done.store(true);
  });
  readers_.push_back(std::move(reader));
}

std::size_t TcpNetwork::reap_readers() {
  // Claim the exited readers under the lock, finalize them outside it:
  // readers_mu_ stays a leaf above send_mu in the §10 order, and each
  // Reader leaves the shared vector exactly once, so concurrent reapers
  // (or a racing shutdown) never double-close an fd.
  std::vector<std::unique_ptr<Reader>> dead;
  std::size_t remaining = 0;
  {
    MutexLock lock(readers_mu_);
    for (auto it = readers_.begin(); it != readers_.end();) {
      if ((*it)->done.load()) {
        dead.push_back(std::move(*it));
        it = readers_.erase(it);
      } else {
        ++it;
      }
    }
    remaining = readers_.size();
  }
  for (auto& r : dead) {
    r->thread.join();  // immediate: `done` is the loop's last action
    {
      // A sender that grabbed this ConnPtr before its routes were purged
      // must not write into a closed (possibly reused) fd.
      MutexLock dead_lock(r->conn->send_mu);
      r->conn->dead = true;
    }
    ::close(r->conn->fd);
  }
  return remaining;
}

std::size_t TcpNetwork::live_readers() { return reap_readers(); }

void TcpNetwork::reader_loop(const ConnPtr& conn) {
  static Counter& frame_drops = metrics().counter("net.tcp.frame_drops");
  const int fd = conn->fd;
  // One frame buffer for the connection's lifetime: decode_envelope copies
  // what it keeps, so the buffer can be reused and steady-state receiving
  // does not allocate per frame.
  wire::Bytes buf;
  // Last site that successfully decoded on this connection — the best peer
  // identity available when a later frame is garbage.
  SiteId last_src = kNoSite;
  for (;;) {
    std::uint8_t lenbuf[4];
    auto got = read_all(fd, lenbuf, 4);
    if (!got.ok() || !got.value()) break;
    const std::uint32_t len = (std::uint32_t{lenbuf[0]} << 24) |
                              (std::uint32_t{lenbuf[1]} << 16) |
                              (std::uint32_t{lenbuf[2]} << 8) |
                              std::uint32_t{lenbuf[3]};
    // 64 MiB sanity cap: protocol messages are tiny; a larger frame means a
    // corrupt stream, and unchecked lengths would let a bad peer OOM us.
    // Unlike an undecodable body (below), there is no resync point after a
    // lying length prefix, so the connection must die — loudly.
    if (len > (64u << 20)) {
      frame_drops.inc();
      HF_WARN << "tcp site " << self_ << ": oversized frame (" << len
              << " bytes) from peer "
              << (last_src == kNoSite ? std::string("?")
                                      : std::to_string(last_src))
              << " fd " << fd << "; closing connection";
      break;
    }
    buf.resize(len);
    auto body = read_all(fd, buf.data(), len);
    if (!body.ok() || !body.value()) break;
    auto env = wire::decode_envelope(buf);
    if (!env.ok()) {
      // Framing is still intact (the length prefix was honest), so the
      // stream can continue: count, log the peer, drop just this frame.
      frame_drops.inc();
      HF_WARN << "tcp site " << self_ << ": dropping undecodable frame from "
              << "peer "
              << (last_src == kNoSite ? std::string("?")
                                      : std::to_string(last_src))
              << " fd " << fd << ": " << env.error().to_string();
      continue;
    }
    last_src = env.value().src;
    // Learn the return route for senders outside the static peer table.
    {
      MutexLock lock(conn_mu_);
      learned_[env.value().src] = conn;
    }
    if (!inbox_.push(std::move(env).value())) break;
  }
  // The connection is dead (EOF, mid-frame close, oversized frame, or
  // shutdown). Purge every route cached on this connection: a stale entry
  // would make the next send() write into a known-dead socket and fail,
  // when reconnecting would have succeeded.
  if (!stopping_.load()) {
    MutexLock lock(conn_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      it = it->second == conn ? conns_.erase(it) : std::next(it);
    }
    for (auto it = learned_.begin(); it != learned_.end();) {
      it = it->second == conn ? learned_.erase(it) : std::next(it);
    }
  }
  // The fd is closed by the reaper after joining this thread — closing here
  // would race senders still holding the ConnPtr.
}

Result<TcpNetwork::ConnPtr> TcpNetwork::peer_conn(SiteId to) {
  TcpPeer peer;
  {
    MutexLock lock(conn_mu_);
    auto it = conns_.find(to);
    if (it != conns_.end()) return it->second;

    if (to >= peers_.size()) {
      // Not in the static table: maybe we learned a route from an inbound
      // frame (client endpoints).
      auto lit = learned_.find(to);
      if (lit != learned_.end()) return lit->second;
      return make_error(Errc::kNotFound, "no such site " + std::to_string(to));
    }
    peer = peers_[to];
  }
  // Outbound connects happen rarely (once per peer, plus reconnects); use
  // the slow path to also reap any readers whose connections died.
  reap_readers();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return make_error(Errc::kInvalidArgument, "bad host " + peer.host);
  }
  // Bound the handshake: SO_SNDTIMEO applies to connect() on Linux, so a
  // blackholed peer costs seconds, not the kernel's minutes of SYN
  // retries. Localhost connects complete in microseconds either way.
  timeval connect_timeout{};
  connect_timeout.tv_sec = 3;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &connect_timeout,
               sizeof connect_timeout);
  // The blocking connect runs with NO lock held (this used to sit inside
  // conn_mu_, freezing route learning in every reader_loop and has_route on
  // the heartbeat path for the full connect timeout whenever a peer was
  // dead).
  // hfverify: allow-blocking(connect): bounded by SO_SNDTIMEO (3s) and
  // lock-free; the epoll backend replaces it with a non-blocking connect.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return errno_error("connect to site " + std::to_string(to));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  MutexLock lock(conn_mu_);
  if (stopping_.load()) {
    ::close(fd);
    return make_error(Errc::kClosed,
                      "endpoint " + std::to_string(self_) + " shut down");
  }
  if (auto it = conns_.find(to); it != conns_.end()) {
    // Lost a connect race while outside the lock: adopt the winner.
    ::close(fd);
    return it->second;
  }
  if (peers_[to].host != peer.host || peers_[to].port != peer.port) {
    // update_peer() changed the address mid-connect; this socket points at
    // the old incarnation. Fail detectably — the caller's retry reconnects.
    ::close(fd);
    return make_error(Errc::kIo, "site " + std::to_string(to) +
                                     " readdressed during connect");
  }
  metrics().counter("net.tcp.connects").inc();
  auto conn = std::make_shared<Conn>(fd);
  conns_[to] = conn;
  // Full duplex: the peer may answer over this same connection (it has no
  // address for us if we are a client outside its static table).
  spawn_reader(conn);
  return conn;
}

Result<void> TcpNetwork::send(SiteId to, wire::Message message) {
  // The variant index survives the encode (which consumes the message);
  // both delivery paths classify stats from it.
  const std::size_t tag = message.index();
  // Scratch buffers reused across sends on this thread: the encoded bytes
  // are consumed before returning, so the steady state allocates nothing.
  static thread_local wire::Encoder enc;
  static thread_local wire::Bytes frame;
  if (to == self_) {
    // Local delivery without a socket round-trip (still wire-encoded).
    wire::encode_envelope(wire::Envelope{self_, to, std::move(message)}, enc);
    auto env = wire::decode_envelope(enc.bytes());
    if (!env.ok()) return env.error();
    if (!inbox_.push(std::move(env).value())) {
      // After shutdown() the inbox is closed; claiming success would make
      // the caller believe a silently-discarded message was delivered.
      return make_error(Errc::kClosed,
                        "endpoint " + std::to_string(self_) + " shut down");
    }
    MutexLock lock(stats_mu_);
    stats_.record_tag(tag, enc.size());
    return {};
  }

  wire::encode_envelope(wire::Envelope{self_, to, std::move(message)}, enc);
  const wire::Bytes& body = enc.bytes();
  auto conn = peer_conn(to);
  if (!conn.ok()) return conn.error();
  const ConnPtr& c = conn.value();

  std::uint8_t lenbuf[4] = {
      static_cast<std::uint8_t>(body.size() >> 24),
      static_cast<std::uint8_t>(body.size() >> 16),
      static_cast<std::uint8_t>(body.size() >> 8),
      static_cast<std::uint8_t>(body.size()),
  };
  frame.clear();
  frame.reserve(4 + body.size());
  frame.insert(frame.end(), lenbuf, lenbuf + 4);
  frame.insert(frame.end(), body.begin(), body.end());

  // Per-connection send lock (the head-of-line-blocking fix): one peer with
  // a full socket buffer stalls only frames bound for it; sends to every
  // other peer proceed on their own connections' locks.
  Result<void> w = [&]() -> Result<void> {
    MutexLock lock(c->send_mu);
    if (c->dead) {
      return make_error(Errc::kIo,
                        "connection to site " + std::to_string(to) + " closed");
    }
    return write_all(c->fd, frame.data(), frame.size());
  }();
  if (!w.ok()) {
    metrics().counter("net.tcp.send_failures").inc();
    drop_conn_routes(to, c);
    return w.error();
  }
  MutexLock lock(stats_mu_);
  // Re-decoding just for stats would be wasteful; classify from the tag
  // captured before encoding, same as the self-delivery path.
  stats_.record_tag(tag, frame.size());
  return {};
}

void TcpNetwork::drop_conn_routes(SiteId to, const ConnPtr& conn) {
  MutexLock lock(conn_mu_);
  if (auto it = conns_.find(to); it != conns_.end() && it->second == conn) {
    conns_.erase(it);
  }
  if (auto it = learned_.find(to); it != learned_.end() && it->second == conn) {
    learned_.erase(it);
  }
  // Wake the reader parked on this socket so it purges residual routes and
  // gets reaped. Learned-only routes used to skip this shutdown, leaving
  // their reader parked on a dead socket (and its fd open) forever.
  ::shutdown(conn->fd, SHUT_RDWR);
}

bool TcpNetwork::has_route(SiteId to) const {
  MutexLock lock(conn_mu_);
  return conns_.count(to) != 0 || learned_.count(to) != 0;
}

std::optional<wire::Envelope> TcpNetwork::recv(Duration timeout) {
  return inbox_.pop_wait(timeout);
}

void TcpNetwork::update_peer(SiteId site, TcpPeer peer) {
  MutexLock lock(conn_mu_);
  if (site >= peers_.size()) return;
  peers_[site] = std::move(peer);
  auto it = conns_.find(site);
  if (it != conns_.end()) {
    ::shutdown(it->second->fd, SHUT_RDWR);  // reaper owns the close
    conns_.erase(it);
  }
}

void TcpNetwork::shutdown() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  {
    MutexLock lock(conn_mu_);
    conns_.clear();    // fds are owned (and closed) via the reader list
    learned_.clear();
  }
  inbox_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // No new readers can spawn now (accept thread gone, peer_conn checks
  // stopping_ before installing). Claim whatever a concurrent reaper has
  // not already taken — each Reader leaves the vector exactly once, so the
  // two finalizers never touch the same fd.
  std::vector<std::unique_ptr<Reader>> all;
  {
    MutexLock lock(readers_mu_);
    all = std::move(readers_);
    readers_.clear();
  }
  for (auto& r : all) {
    if (!r->done.load()) ::shutdown(r->conn->fd, SHUT_RDWR);
  }
  for (auto& r : all) {
    if (r->thread.joinable()) r->thread.join();
    MutexLock dead_lock(r->conn->send_mu);
    r->conn->dead = true;
  }
  for (auto& r : all) ::close(r->conn->fd);
}

NetworkStats TcpNetwork::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace hyperfile
