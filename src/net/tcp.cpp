#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iterator>

#include "common/logging.hpp"
#include "common/metrics.hpp"

namespace hyperfile {
namespace {

Error errno_error(const std::string& what) {
  return make_error(Errc::kIo, what + ": " + std::strerror(errno));
}

/// Write all of `data`, handling short writes and EINTR.
Result<void> write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("send");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return {};
}

/// Read exactly `len` bytes; false on clean EOF at a frame boundary.
Result<bool> read_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF
      return make_error(Errc::kIo, "connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpNetwork::TcpNetwork(SiteId self, std::vector<TcpPeer> peers)
    : self_(self), peers_(std::move(peers)) {}

Result<std::unique_ptr<TcpNetwork>> TcpNetwork::create(SiteId self,
                                                       std::vector<TcpPeer> peers) {
  std::unique_ptr<TcpNetwork> net(new TcpNetwork(self, std::move(peers)));
  if (auto r = net->start_listener(); !r.ok()) return r.error();
  return net;
}

TcpNetwork::~TcpNetwork() { shutdown(); }

Result<void> TcpNetwork::start_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return errno_error("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  // Endpoints outside the static table (clients) listen on an ephemeral
  // port; peers reach them via learned routes only.
  const TcpPeer self_peer = [&] {
    MutexLock lock(conn_mu_);
    return self_ < peers_.size() ? peers_[self_] : TcpPeer{"127.0.0.1", 0};
  }();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(self_peer.port);
  if (::inet_pton(AF_INET, self_peer.host.c_str(), &addr.sin_addr) != 1) {
    return make_error(Errc::kInvalidArgument,
                      "bad listen host " + self_peer.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    return errno_error("bind " + std::to_string(self_peer.port));
  }
  if (::listen(listen_fd_, 64) < 0) return errno_error("listen");

  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return {};
}

void TcpNetwork::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    metrics().counter("net.tcp.accepts").inc();
    spawn_reader(fd);
  }
}

void TcpNetwork::spawn_reader(int fd) {
  MutexLock lock(readers_mu_);
  reader_fds_.push_back(fd);
  // hfverify: allow-lockorder(thread-entry): the lambda body runs on the
  // spawned reader thread, never under readers_mu_.
  readers_.emplace_back([this, fd] { reader_loop(fd); });
}

void TcpNetwork::reader_loop(int fd) {
  // One frame buffer for the connection's lifetime: decode_envelope copies
  // what it keeps, so the buffer can be reused and steady-state receiving
  // does not allocate per frame.
  wire::Bytes buf;
  for (;;) {
    std::uint8_t lenbuf[4];
    auto got = read_all(fd, lenbuf, 4);
    if (!got.ok() || !got.value()) break;
    const std::uint32_t len = (std::uint32_t{lenbuf[0]} << 24) |
                              (std::uint32_t{lenbuf[1]} << 16) |
                              (std::uint32_t{lenbuf[2]} << 8) |
                              std::uint32_t{lenbuf[3]};
    // 64 MiB sanity cap: protocol messages are tiny; a larger frame means a
    // corrupt stream, and unchecked lengths would let a bad peer OOM us.
    if (len > (64u << 20)) break;
    buf.resize(len);
    auto body = read_all(fd, buf.data(), len);
    if (!body.ok() || !body.value()) break;
    auto env = wire::decode_envelope(buf);
    if (!env.ok()) {
      HF_WARN << "tcp site " << self_
              << ": dropping undecodable frame: " << env.error().to_string();
      continue;
    }
    // Learn the return route for senders outside the static peer table.
    {
      MutexLock lock(conn_mu_);
      learned_[env.value().src] = fd;
    }
    if (!inbox_.push(std::move(env).value())) break;
  }
  // The connection is dead (EOF, mid-frame close, oversized frame, or
  // shutdown). Purge every route cached on this fd: a stale entry would
  // make the next send() write into a known-dead socket and fail, when
  // reconnecting would have succeeded.
  if (!stopping_.load()) {
    MutexLock lock(conn_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      it = it->second == fd ? conns_.erase(it) : std::next(it);
    }
    for (auto it = learned_.begin(); it != learned_.end();) {
      it = it->second == fd ? learned_.erase(it) : std::next(it);
    }
  }
  // fd is closed in shutdown(), after the thread is joined — closing here
  // would race with shutdown() calling ::shutdown on a possibly-reused fd.
}

Result<int> TcpNetwork::peer_socket(SiteId to) {
  MutexLock lock(conn_mu_);
  auto it = conns_.find(to);
  if (it != conns_.end()) return it->second;

  if (to >= peers_.size()) {
    // Not in the static table: maybe we learned a route from an inbound
    // frame (client endpoints).
    auto lit = learned_.find(to);
    if (lit != learned_.end()) return lit->second;
    return make_error(Errc::kNotFound, "no such site " + std::to_string(to));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peers_[to].port);
  if (::inet_pton(AF_INET, peers_[to].host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return make_error(Errc::kInvalidArgument, "bad host " + peers_[to].host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return errno_error("connect to site " + std::to_string(to));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  metrics().counter("net.tcp.connects").inc();
  conns_[to] = fd;
  // Full duplex: the peer may answer over this same connection (it has no
  // address for us if we are a client outside its static table).
  spawn_reader(fd);
  return fd;
}

Result<void> TcpNetwork::send(SiteId to, wire::Message message) {
  // The variant index survives the encode (which consumes the message);
  // both delivery paths classify stats from it.
  const std::size_t tag = message.index();
  // Scratch buffers reused across sends on this thread: the encoded bytes
  // are consumed before returning, so the steady state allocates nothing.
  static thread_local wire::Encoder enc;
  static thread_local wire::Bytes frame;
  if (to == self_) {
    // Local delivery without a socket round-trip (still wire-encoded).
    wire::encode_envelope(wire::Envelope{self_, to, std::move(message)}, enc);
    auto env = wire::decode_envelope(enc.bytes());
    if (!env.ok()) return env.error();
    if (!inbox_.push(std::move(env).value())) {
      // After shutdown() the inbox is closed; claiming success would make
      // the caller believe a silently-discarded message was delivered.
      return make_error(Errc::kClosed,
                        "endpoint " + std::to_string(self_) + " shut down");
    }
    MutexLock lock(stats_mu_);
    stats_.record_tag(tag, enc.size());
    return {};
  }

  wire::encode_envelope(wire::Envelope{self_, to, std::move(message)}, enc);
  const wire::Bytes& body = enc.bytes();
  auto fd = peer_socket(to);
  if (!fd.ok()) return fd.error();

  std::uint8_t lenbuf[4] = {
      static_cast<std::uint8_t>(body.size() >> 24),
      static_cast<std::uint8_t>(body.size() >> 16),
      static_cast<std::uint8_t>(body.size() >> 8),
      static_cast<std::uint8_t>(body.size()),
  };
  frame.clear();
  frame.reserve(4 + body.size());
  frame.insert(frame.end(), lenbuf, lenbuf + 4);
  frame.insert(frame.end(), body.begin(), body.end());

  Result<void> w = [&] {
    MutexLock lock(send_mu_);
    return write_all(fd.value(), frame.data(), frame.size());
  }();
  if (!w.ok()) {
    metrics().counter("net.tcp.send_failures").inc();
    // Drop the cached/learned route; the next send reconnects (or fails
    // cleanly for learned-only routes). The fd itself is only shut down —
    // its reader thread owns it until endpoint shutdown closes it.
    MutexLock lock(conn_mu_);
    auto it = conns_.find(to);
    if (it != conns_.end()) {
      ::shutdown(it->second, SHUT_RDWR);
      conns_.erase(it);
    }
    learned_.erase(to);
    return w.error();
  }
  MutexLock lock(stats_mu_);
  // Re-decoding just for stats would be wasteful; classify from the tag
  // captured before encoding, same as the self-delivery path.
  stats_.record_tag(tag, frame.size());
  return {};
}

bool TcpNetwork::has_route(SiteId to) const {
  MutexLock lock(conn_mu_);
  return conns_.count(to) != 0 || learned_.count(to) != 0;
}

std::optional<wire::Envelope> TcpNetwork::recv(Duration timeout) {
  return inbox_.pop_wait(timeout);
}

void TcpNetwork::update_peer(SiteId site, TcpPeer peer) {
  MutexLock lock(conn_mu_);
  if (site >= peers_.size()) return;
  peers_[site] = std::move(peer);
  auto it = conns_.find(site);
  if (it != conns_.end()) {
    ::shutdown(it->second, SHUT_RDWR);  // reader owns the close
    conns_.erase(it);
  }
}

void TcpNetwork::shutdown() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  {
    MutexLock lock(conn_mu_);
    conns_.clear();    // fds are owned (and closed) via reader_fds_
    learned_.clear();
  }
  inbox_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  MutexLock lock(readers_mu_);
  for (int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
  for (auto& t : readers_) {
    if (t.joinable()) t.join();
  }
  for (int fd : reader_fds_) ::close(fd);
  readers_.clear();
  reader_fds_.clear();
}

NetworkStats TcpNetwork::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace hyperfile
