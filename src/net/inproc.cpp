#include "net/inproc.hpp"

#include "common/metrics.hpp"

namespace hyperfile {

void NetworkStats::record(const wire::Message& m, std::size_t bytes) {
  record_tag(m.index(), bytes);
}

void NetworkStats::record_tag(std::size_t variant_index, std::size_t bytes) {
  // Mirror into the process-wide registry: every transport that records a
  // delivered frame here shows up in metrics dumps and bench JSON.
  static Counter& msgs = metrics().counter("net.messages_sent");
  static Counter& nbytes = metrics().counter("net.bytes_sent");
  msgs.inc();
  nbytes.inc(bytes);
  ++messages_sent;
  bytes_sent += bytes;
  switch (variant_index) {
    case 0:
      ++deref_messages;
      break;
    case 1:
      ++start_messages;
      break;
    case 2:
      ++result_messages;
      break;
    case 3:
      ++done_messages;
      break;
    case 6:
      ++batch_deref_messages;
      break;
  }
}

NetworkStats& NetworkStats::operator+=(const NetworkStats& o) {
  messages_sent += o.messages_sent;
  bytes_sent += o.bytes_sent;
  deref_messages += o.deref_messages;
  batch_deref_messages += o.batch_deref_messages;
  result_messages += o.result_messages;
  start_messages += o.start_messages;
  done_messages += o.done_messages;
  return *this;
}

class InProcEndpoint final : public MessageEndpoint {
 public:
  InProcEndpoint(InProcNetwork& net, SiteId self) : net_(net), self_(self) {}

  SiteId self() const override { return self_; }

  Result<void> send(SiteId to, wire::Message message) override {
    return net_.send(self_, to, std::move(message));
  }

  std::optional<wire::Envelope> recv(Duration timeout) override {
    return net_.mailboxes_[self_]->pop_wait(timeout);
  }

  bool wake_capable() const override { return true; }
  void wake_recv() override { net_.mailboxes_[self_]->interrupt(); }

 private:
  InProcNetwork& net_;
  SiteId self_;
};

InProcNetwork::InProcNetwork(std::size_t endpoints) {
  mailboxes_.reserve(endpoints);
  for (std::size_t i = 0; i < endpoints; ++i) {
    mailboxes_.push_back(std::make_unique<Channel<wire::Envelope>>());
  }
}

InProcNetwork::~InProcNetwork() { shutdown(); }

std::unique_ptr<MessageEndpoint> InProcNetwork::endpoint(SiteId self) {
  return std::make_unique<InProcEndpoint>(*this, self);
}

void InProcNetwork::shutdown() {
  for (auto& m : mailboxes_) m->close();
}

void InProcNetwork::close_endpoint(SiteId site) {
  if (site < mailboxes_.size()) mailboxes_[site]->close();
}

void InProcNetwork::reopen_endpoint(SiteId site) {
  if (site < mailboxes_.size()) mailboxes_[site]->reopen();
}

NetworkStats InProcNetwork::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

Result<void> InProcNetwork::send(SiteId from, SiteId to, wire::Message message) {
  if (to >= mailboxes_.size()) {
    return make_error(Errc::kNotFound, "no such site " + std::to_string(to));
  }
  // Round-trip through the wire format: the receiver sees exactly what a
  // socket peer would, and encoding bugs surface in every test run. The
  // scratch encoder is reused across sends on this thread — the bytes are
  // consumed by decode_envelope before returning.
  static thread_local wire::Encoder enc;
  wire::encode_envelope(wire::Envelope{from, to, std::move(message)}, enc);
  auto env = wire::decode_envelope(enc.bytes());
  if (!env.ok()) {
    return make_error(Errc::kInternal,
                      "wire round-trip failed: " + env.error().to_string());
  }
  // Record stats only after the mailbox accepts the frame: counting before
  // the push meant a send to a closed (stopped) site still bumped
  // messages_sent, so "messages sent" drifted above "frames delivered" and
  // the chaos tests' conservation law could never balance.
  const std::size_t variant_index = env.value().message.index();
  if (!mailboxes_[to]->push(std::move(env).value())) {
    return make_error(Errc::kClosed, "site " + std::to_string(to) + " shut down");
  }
  MutexLock lock(stats_mu_);
  stats_.record_tag(variant_index, enc.size());
  return {};
}

}  // namespace hyperfile
