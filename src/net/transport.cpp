#include "net/transport.hpp"

#include "net/epoll.hpp"
#include "net/tcp.hpp"

namespace hyperfile {

const char* to_string(TcpBackend backend) {
  switch (backend) {
    case TcpBackend::kThreaded:
      return "threaded";
    case TcpBackend::kEpoll:
      return "epoll";
  }
  return "unknown";
}

Result<TcpBackend> parse_tcp_backend(const std::string& name) {
  if (name == "threaded" || name == "tcp") return TcpBackend::kThreaded;
  if (name == "epoll") return TcpBackend::kEpoll;
  return make_error(Errc::kInvalidArgument,
                    "unknown tcp backend '" + name +
                        "' (expected 'threaded' or 'epoll')");
}

Result<std::unique_ptr<SocketTransport>> make_socket_transport(
    TcpBackend backend, SiteId self, std::vector<TcpPeer> peers) {
  switch (backend) {
    case TcpBackend::kThreaded: {
      auto net = TcpNetwork::create(self, std::move(peers));
      if (!net.ok()) return net.error();
      return std::unique_ptr<SocketTransport>(std::move(net).value());
    }
    case TcpBackend::kEpoll: {
      auto net = EpollNetwork::create(self, std::move(peers));
      if (!net.ok()) return net.error();
      return std::unique_ptr<SocketTransport>(std::move(net).value());
    }
  }
  return make_error(Errc::kInvalidArgument, "unknown tcp backend");
}

}  // namespace hyperfile
