// Event-driven TCP message network: one epoll loop, non-blocking sockets.
//
// The thread-per-connection backend (net/tcp.hpp) spends two threads and two
// blocking syscalls per connection; at hundreds of sites that is hundreds of
// stacks doing nothing but parking in recv(). This backend multiplexes every
// socket — the listener, outbound connects in flight, and all established
// connections — onto a single event-loop thread:
//
//   * Sockets are non-blocking. Outbound connects return EINPROGRESS and
//     complete (or fail) as an EPOLLOUT event; no caller ever sleeps inside
//     a connect.
//   * send() never touches a socket. It encodes the frame, appends it to the
//     destination connection's bounded send queue, and wakes the loop via an
//     eventfd. The loop drains queues with writev(), coalescing up to
//     kWritevBatch frames per syscall.
//   * Backpressure is explicit: when a peer's queue is full, send() fails
//     fast with Errc::kBusy and bumps `net.epoll.busy_rejects`. Callers
//     (send_with_retry) treat kBusy as retryable; nothing blocks and
//     nothing is silently dropped.
//   * Failure is detectable: when a connection dies (connect refused, reset,
//     oversized frame), its queued frames are counted into
//     `net.epoll.dropped_frames` and the peer is tombstoned — the *next*
//     send() to that site fails loudly with kIo, exactly the signal the
//     retry/repayment protocol needs, then the one after reconnects.
//
// Framing, route learning, and MessageEndpoint semantics are identical to
// the threaded backend (docs/WIRE_PROTOCOL.md); the two interoperate on the
// wire and are interchangeable behind SocketTransport (DESIGN.md §17).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "net/channel.hpp"
#include "net/transport.hpp"

namespace hyperfile {

struct EpollOptions {
  /// Per-connection send-queue bound, in frames. A full queue makes send()
  /// fail with kBusy — the backpressure contract (DESIGN.md §17). The
  /// default comfortably holds a drain burst yet caps per-peer buffering at
  /// a few MiB of typical frames.
  std::size_t max_queue_frames = 1024;
};

class EpollNetwork final : public SocketTransport {
 public:
  /// Same peer-table convention as TcpNetwork::create: `peers[i]` is where
  /// site i listens; `self` outside the table (or port 0) means an
  /// ephemeral listen port.
  static Result<std::unique_ptr<EpollNetwork>> create(
      SiteId self, std::vector<TcpPeer> peers, EpollOptions options = {});

  ~EpollNetwork() override;

  EpollNetwork(const EpollNetwork&) = delete;
  EpollNetwork& operator=(const EpollNetwork&) = delete;

  SiteId self() const override { return self_; }
  std::uint16_t bound_port() const override { return bound_port_; }

  /// Enqueue-and-wake: never blocks, never touches a socket. kBusy when the
  /// destination queue is full; kIo when the previous incarnation of the
  /// connection failed (tombstone consumed — retry to reconnect).
  HF_ANY_THREAD Result<void> send(SiteId to, wire::Message message) override;
  HF_BLOCKING std::optional<wire::Envelope> recv(Duration timeout) override;

  /// Readiness-driven: inbound frames land in inbox_ from the socket loop,
  /// so a parked recv() is interruptible and the consumer needs no timed
  /// poll. (wake_recv interrupts the *inbox* wait — distinct from the
  /// private wake(), which kicks the socket loop's epoll_wait via eventfd.)
  bool wake_capable() const override { return true; }
  HF_ANY_THREAD void wake_recv() override { inbox_.interrupt(); }

  void update_peer(SiteId site, TcpPeer peer) override;

  void shutdown() override;

  NetworkStats stats() const override;

  bool has_route(SiteId to) const override;

 private:
  /// One connection. Senders touch only the mu-guarded queue half; every
  /// socket operation and all parse/flush state belong to the loop thread.
  struct Conn {
    explicit Conn(int fd_in, bool connecting_in)
        : fd(fd_in), connecting(connecting_in) {}

    const int fd;

    Mutex mu;
    /// Encoded frames (length prefix included) waiting for the loop.
    std::deque<wire::Bytes> sendq HF_GUARDED_BY(mu);
    std::size_t sendq_bytes HF_GUARDED_BY(mu) = 0;
    /// Set by the loop at teardown; enqueuers fail kIo instead of feeding a
    /// closed connection.
    bool dead HF_GUARDED_BY(mu) = false;
    /// True while this Conn sits on pending_flush_ — one wake per burst of
    /// sends, not one per frame.
    std::atomic<bool> flush_queued{false};

    // --- loop-thread-only state (no lock: single-owner confinement) ---
    /// Non-blocking connect still in flight; completion is the first
    /// EPOLLOUT (checked via SO_ERROR). Written once pre-handoff.
    bool connecting;
    /// EPOLLOUT currently armed (tracked to avoid redundant epoll_ctl).
    bool want_write = false;
    /// Bytes of sendq.front() already written (short writev).
    std::size_t front_off = 0;
    /// Unparsed inbound bytes (partial frames between reads).
    wire::Bytes rdbuf;
    /// Last site that decoded successfully here — peer identity for logs.
    SiteId last_src = kNoSite;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  EpollNetwork(SiteId self, std::vector<TcpPeer> peers, EpollOptions options);

  Result<void> start();
  void wake();

  // Event-loop internals; confined to loop_thread_ (hfverify-checked).
  HF_EVENT_LOOP_ONLY void run_loop();
  HF_EVENT_LOOP_ONLY void drain_pending();
  HF_EVENT_LOOP_ONLY void adopt_conn(const ConnPtr& conn);
  HF_EVENT_LOOP_ONLY void accept_ready();
  HF_EVENT_LOOP_ONLY void handle_event(int fd, std::uint32_t events);
  HF_EVENT_LOOP_ONLY void read_conn(const ConnPtr& conn);
  HF_EVENT_LOOP_ONLY void flush_conn(const ConnPtr& conn);
  HF_EVENT_LOOP_ONLY void set_want_write(const ConnPtr& conn, bool want);
  HF_EVENT_LOOP_ONLY void teardown_conn(const ConnPtr& conn,
                                        const std::string& reason);

  SiteId self_;
  const EpollOptions options_;
  std::uint16_t bound_port_ = 0;  // written once by start()
  int listen_fd_ = -1;            // written once by start()
  int epoll_fd_ = -1;             // written once by start()
  int wake_fd_ = -1;              // eventfd; written once by start()
  std::atomic<bool> stopping_{false};
  std::thread loop_thread_;

  /// Routing tables and the peer address book. Never held across a syscall
  /// that can block (connects are non-blocking by construction).
  mutable Mutex conn_mu_;
  std::vector<TcpPeer> peers_ HF_GUARDED_BY(conn_mu_);
  std::map<SiteId, ConnPtr> conns_ HF_GUARDED_BY(conn_mu_);    // outbound
  std::map<SiteId, ConnPtr> learned_ HF_GUARDED_BY(conn_mu_);  // inbound
  /// Sites whose connection died with work possibly undelivered. The next
  /// send() consumes the tombstone and fails kIo — asynchronous failure
  /// made visible at the protocol's retry boundary.
  std::map<SiteId, std::string> failed_ HF_GUARDED_BY(conn_mu_);

  /// Sender → loop handoff lists (the only cross-thread mutation channel).
  Mutex pending_mu_;
  std::vector<ConnPtr> pending_adopt_ HF_GUARDED_BY(pending_mu_);
  std::vector<ConnPtr> pending_flush_ HF_GUARDED_BY(pending_mu_);
  std::vector<ConnPtr> pending_close_ HF_GUARDED_BY(pending_mu_);

  /// Loop-thread-only: fd → connection for event dispatch.
  std::map<int, ConnPtr> conns_by_fd_;

  Channel<wire::Envelope> inbox_;

  mutable Mutex stats_mu_;
  NetworkStats stats_ HF_GUARDED_BY(stats_mu_);
};

}  // namespace hyperfile
