// Message endpoint abstraction: what a HyperFile site (or client) uses to
// talk to the rest of the deployment. Two implementations:
//   * InProcNetwork (net/inproc.hpp)    — threads in one process;
//   * TcpNetwork    (net/tcp.hpp)       — real sockets on localhost/LAN.
//
// Both serialize every message through the wire format, so the in-process
// runtime exercises exactly the bytes a TCP deployment would exchange.
#pragma once

#include <optional>

#include "common/result.hpp"
#include "common/sync.hpp"
#include "common/types.hpp"
#include "wire/message.hpp"

namespace hyperfile {

class MessageEndpoint {
 public:
  virtual ~MessageEndpoint() = default;

  virtual SiteId self() const = 0;

  /// Fire-and-forget send (the paper's protocol needs no request/response
  /// pairing: results flow back as ordinary messages).
  virtual Result<void> send(SiteId to, wire::Message message) = 0;

  /// Blocking receive with timeout; nullopt on timeout or shutdown.
  HF_BLOCKING virtual std::optional<wire::Envelope> recv(Duration timeout) = 0;

  /// True when wake_recv() can cut a parked recv() short. Wake-capable
  /// endpoints let the event loop sleep until real work arrives (recv
  /// bounded only by its next periodic deadline) instead of spinning a
  /// short timed poll; SiteServer::run_loop picks its recv budget by this.
  virtual bool wake_capable() const { return false; }

  /// Interrupt a parked recv() from another thread; it returns early as if
  /// it timed out. Latched, not edge-triggered: a wake landing between two
  /// recv() calls is consumed by the next one. Default: no-op (the caller
  /// must keep a bounded poll — see wake_capable()).
  HF_ANY_THREAD virtual void wake_recv() {}
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t deref_messages = 0;
  std::uint64_t batch_deref_messages = 0;
  std::uint64_t result_messages = 0;
  std::uint64_t start_messages = 0;
  std::uint64_t done_messages = 0;

  void record(const wire::Message& m, std::size_t bytes);
  /// Same classification from a Message::index() captured before the
  /// message was consumed by encoding — lets transports count per-type
  /// without re-decoding the frame.
  void record_tag(std::size_t variant_index, std::size_t bytes);
  NetworkStats& operator+=(const NetworkStats& o);
};

}  // namespace hyperfile
