// Deterministic fault injection for any MessageEndpoint.
//
// FaultInjectingEndpoint decorates an endpoint (InProcNetwork handle or
// TcpNetwork alike — both speak MessageEndpoint) and disturbs its *send*
// path under a seeded common/rng stream: frames are silently dropped,
// duplicated, or held back and released later (delay / reorder). Dropping
// is silent on purpose — the send reports success, exactly like a lossy
// network. A *detected* failure (dead socket, closed mailbox) is already
// handled by the protocol's repay-and-drop logic; the faults injected here
// are the ones only sequence numbers, duplicate suppression, and the
// idle-context TTL can survive (DESIGN.md §11).
//
// Held frames are released on subsequent endpoint activity: every send()
// and every recv() call is one *tick*, and a held frame ships once its tick
// budget expires. Site event loops poll recv() continuously, so delayed
// frames are released promptly — delay and reorder perturb ordering, they
// never lose messages.
//
// Runtime partition/heal toggles cut individual links (or the whole
// endpoint) mid-run: partitioned sends are silently swallowed, modelling a
// network partition. A *crashed* peer is the other fault class and is
// modelled separately by crash()/revive(): sends to a crashed peer fail
// loudly with kClosed — the same detected error TcpNetwork reports for a
// dead fd and InProcNetwork for a closed mailbox — so the sender's
// repay-and-drop path fires immediately instead of waiting out a TTL.
// Partition = the wire lies (silent loss); crash = the OS tells the truth
// (connection refused). Held frames already in flight to a peer that then
// crashes are discarded at release time and counted as crash_dropped, so
// the conservation laws below stay exact.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/sync.hpp"
#include "net/endpoint.hpp"

namespace hyperfile {

struct FaultOptions {
  /// Probability a frame is silently discarded.
  double drop_p = 0;
  /// Probability a frame is delivered twice.
  double dup_p = 0;
  /// Probability a frame is held for one tick (swaps with the next send).
  double reorder_p = 0;
  /// Probability a frame is held for 2..max_hold_ticks ticks.
  double delay_p = 0;
  std::uint32_t max_hold_ticks = 6;
  /// Seed for the endpoint's private fault stream (common/rng): the same
  /// seed and traffic produce the same fault schedule.
  std::uint64_t seed = 1;
  /// Peers whose links are never disturbed (e.g. the client endpoint, so a
  /// test's request/reply channel stays reliable). Self-sends are always
  /// exempt: the fault model is links, not local delivery.
  std::vector<SiteId> exempt;
};

/// Ground truth for every frame the injector touched. Two conservation laws
/// hold at all times (asserted by tests/test_chaos.cpp):
///   attempts == forwarded + dropped + held + partitioned + crashed
///   held     == released + crash_dropped + frames still waiting their tick
/// and once every held frame has been flushed,
///   delivered == successful inner sends (forwarded + duplicated + released
///                minus any the inner endpoint rejected).
struct FaultStats {
  std::uint64_t attempts = 0;     // send() calls observed
  std::uint64_t forwarded = 0;    // frames passed straight to the inner endpoint
  std::uint64_t dropped = 0;      // silently discarded by drop_p
  std::uint64_t duplicated = 0;   // extra copies injected by dup_p
  std::uint64_t held = 0;         // frames delayed/reordered
  std::uint64_t released = 0;     // held frames later shipped
  std::uint64_t partitioned = 0;  // swallowed by an active partition
  std::uint64_t crashed = 0;      // refused loudly: destination crashed
  std::uint64_t crash_dropped = 0;  // held frames discarded at release
  std::uint64_t delivered = 0;    // frames the inner endpoint accepted
};

class FaultInjectingEndpoint final : public MessageEndpoint {
 public:
  FaultInjectingEndpoint(std::unique_ptr<MessageEndpoint> inner,
                         FaultOptions options);
  ~FaultInjectingEndpoint() override = default;

  SiteId self() const override { return inner_->self(); }

  Result<void> send(SiteId to, wire::Message message) override;
  HF_BLOCKING std::optional<wire::Envelope> recv(Duration timeout) override;

  /// Cut the link to `peer`: sends are silently swallowed until heal(peer).
  void partition(SiteId peer);
  void heal(SiteId peer);
  /// Cut every non-exempt link / restore them all.
  void partition_all();
  void heal_all();

  /// Mark `peer` crashed: sends fail loudly with kClosed (a detected error,
  /// unlike partition's silent swallow) and held frames destined to it are
  /// discarded as crash_dropped. Applies even to exempt links — a dead
  /// process is dead on every link. revive() restores normal treatment.
  void crash(SiteId peer);
  void revive(SiteId peer);

  /// Release every held frame immediately (e.g. before shutdown assertions).
  void flush_held();

  FaultStats fault_stats() const;

 private:
  struct Held {
    SiteId to;
    wire::Message message;
    std::uint64_t release_at;  // tick count at which the frame ships
  };

  bool link_exempt(SiteId to) const;
  /// Advance the tick clock and extract every held frame that came due; the
  /// caller ships them after dropping the lock (inner sends are not made
  /// under mu_).
  std::vector<Held> advance_tick() HF_REQUIRES(mu_);
  /// Remove frames destined to a crashed peer from `frames`, counting them
  /// as crash_dropped; returns their destinations so the caller can emit
  /// per-link metrics outside the lock.
  std::vector<SiteId> drop_crashed(std::vector<Held>& frames)
      HF_REQUIRES(mu_);
  void deliver(std::vector<Held> due);
  void count_crash_dropped(const std::vector<SiteId>& links);

  std::unique_ptr<MessageEndpoint> inner_;
  const FaultOptions options_;

  mutable Mutex mu_;
  Rng rng_ HF_GUARDED_BY(mu_);
  std::uint64_t ticks_ HF_GUARDED_BY(mu_) = 0;
  std::vector<Held> held_ HF_GUARDED_BY(mu_);
  std::unordered_set<SiteId> partitioned_ HF_GUARDED_BY(mu_);
  bool all_partitioned_ HF_GUARDED_BY(mu_) = false;
  std::unordered_set<SiteId> crashed_ HF_GUARDED_BY(mu_);
  FaultStats stats_ HF_GUARDED_BY(mu_);
};

}  // namespace hyperfile
