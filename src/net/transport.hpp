// Socket transport abstraction: the two TCP backends behind one interface.
//
//   * TcpNetwork   (net/tcp.hpp)   — thread-per-connection: an accept thread
//     plus one blocking reader thread per socket. Simple, debuggable, and
//     fine for a handful of sites.
//   * EpollNetwork (net/epoll.hpp) — event-driven: one epoll loop over
//     non-blocking sockets with per-peer bounded send queues and explicit
//     backpressure (`Errc::kBusy`). This is the backend that scales to
//     hundreds of connections (DESIGN.md §17).
//
// Both speak the same length-prefixed wire framing (docs/WIRE_PROTOCOL.md),
// so they interoperate on the wire: an hfq client on one backend can talk
// to a hyperfiled server on the other. Everything above the endpoint —
// SiteServer, Client, FaultInjectingEndpoint, the chaos suite — sees only
// MessageEndpoint and runs unchanged on either.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/endpoint.hpp"

namespace hyperfile {

struct TcpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

enum class TcpBackend {
  kThreaded,  // TcpNetwork: accept thread + reader thread per connection
  kEpoll,     // EpollNetwork: one event loop, non-blocking sockets
};

const char* to_string(TcpBackend backend);
/// "tcp"/"threaded" or "epoll"; kInvalidArgument otherwise.
Result<TcpBackend> parse_tcp_backend(const std::string& name);

/// What deployment glue (examples, tests, bench harnesses) needs beyond
/// MessageEndpoint: the ephemeral-port bootstrap dance and observability.
class SocketTransport : public MessageEndpoint {
 public:
  /// The port the endpoint actually listens on (== the configured port, or
  /// the kernel-assigned one when configured as 0).
  virtual std::uint16_t bound_port() const = 0;

  /// Update a peer's address (e.g. after it bound an ephemeral port).
  /// Drops any cached connection to that peer.
  virtual void update_peer(SiteId site, TcpPeer peer) = 0;

  virtual void shutdown() = 0;

  virtual NetworkStats stats() const = 0;

  /// True if a cached outbound connection or learned route to `to` exists.
  /// Observability hook for tests: a dead connection must disappear from
  /// here once the transport notices, so the next send reconnects.
  virtual bool has_route(SiteId to) const = 0;
};

/// Factory over the two backends; `peers[i]` is where site i listens (see
/// TcpNetwork::create for the self-outside-the-table client convention).
Result<std::unique_ptr<SocketTransport>> make_socket_transport(
    TcpBackend backend, SiteId self, std::vector<TcpPeer> peers);

}  // namespace hyperfile
