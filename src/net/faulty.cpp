#include "net/faulty.hpp"

#include <algorithm>
#include <utility>

namespace hyperfile {

FaultInjectingEndpoint::FaultInjectingEndpoint(
    std::unique_ptr<MessageEndpoint> inner, FaultOptions options)
    : inner_(std::move(inner)),
      options_(std::move(options)),
      rng_(options_.seed) {}

bool FaultInjectingEndpoint::link_exempt(SiteId to) const {
  if (to == inner_->self()) return true;
  return std::find(options_.exempt.begin(), options_.exempt.end(), to) !=
         options_.exempt.end();
}

std::vector<FaultInjectingEndpoint::Held>
FaultInjectingEndpoint::advance_tick() {
  ++ticks_;
  std::vector<Held> due;
  auto it = held_.begin();
  while (it != held_.end()) {
    if (it->release_at <= ticks_) {
      due.push_back(std::move(*it));
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
  return due;
}

void FaultInjectingEndpoint::deliver(std::vector<Held> due) {
  // Late delivery of a frame whose link has died is just another drop; the
  // protocol's retry/TTL machinery owns recovery, so errors are swallowed.
  for (auto& h : due) (void)inner_->send(h.to, std::move(h.message));
}

Result<void> FaultInjectingEndpoint::send(SiteId to, wire::Message message) {
  std::vector<Held> due;
  enum class Verdict { kForward, kDuplicate, kDrop, kHold, kPartitioned };
  Verdict verdict = Verdict::kForward;
  {
    MutexLock lock(mu_);
    due = advance_tick();
    if (link_exempt(to)) {
      ++stats_.forwarded;
    } else if (all_partitioned_ || partitioned_.count(to) != 0) {
      ++stats_.partitioned;
      verdict = Verdict::kPartitioned;
    } else if (rng_.next_bool(options_.drop_p)) {
      ++stats_.dropped;
      verdict = Verdict::kDrop;
    } else if (rng_.next_bool(options_.reorder_p) ||
               rng_.next_bool(options_.delay_p)) {
      // Reorder holds for exactly one tick (swap with the next frame);
      // delay holds for 2..max_hold_ticks. Held frames are released on
      // later sends *and* recv polls, so nothing is held forever while the
      // event loop keeps turning.
      std::uint32_t span = options_.max_hold_ticks > 2
                               ? static_cast<std::uint32_t>(
                                     2 + rng_.next_below(
                                             options_.max_hold_ticks - 1))
                               : 2;
      std::uint64_t hold = rng_.next_bool(options_.reorder_p /
                                          (options_.reorder_p +
                                           options_.delay_p + 1e-12))
                               ? 1
                               : span;
      ++stats_.held;
      held_.push_back(Held{to, std::move(message), ticks_ + hold});
      verdict = Verdict::kHold;
    } else {
      ++stats_.forwarded;
      if (rng_.next_bool(options_.dup_p)) {
        ++stats_.duplicated;
        verdict = Verdict::kDuplicate;
      }
    }
  }
  deliver(std::move(due));
  switch (verdict) {
    case Verdict::kPartitioned:
    case Verdict::kDrop:
    case Verdict::kHold:
      // Silent loss/latency: the wire accepted the frame as far as the
      // sender can tell. Detected failures stay loud — they come from the
      // inner endpoint below.
      return {};
    case Verdict::kDuplicate: {
      wire::Message copy = message;
      auto r = inner_->send(to, std::move(message));
      (void)inner_->send(to, std::move(copy));
      return r;
    }
    case Verdict::kForward:
      return inner_->send(to, std::move(message));
  }
  return {};
}

std::optional<wire::Envelope> FaultInjectingEndpoint::recv(Duration timeout) {
  std::vector<Held> due;
  {
    MutexLock lock(mu_);
    due = advance_tick();
  }
  deliver(std::move(due));
  return inner_->recv(timeout);
}

void FaultInjectingEndpoint::partition(SiteId peer) {
  MutexLock lock(mu_);
  partitioned_.insert(peer);
}

void FaultInjectingEndpoint::heal(SiteId peer) {
  MutexLock lock(mu_);
  partitioned_.erase(peer);
}

void FaultInjectingEndpoint::partition_all() {
  MutexLock lock(mu_);
  all_partitioned_ = true;
}

void FaultInjectingEndpoint::heal_all() {
  MutexLock lock(mu_);
  all_partitioned_ = false;
  partitioned_.clear();
}

void FaultInjectingEndpoint::flush_held() {
  std::vector<Held> due;
  {
    MutexLock lock(mu_);
    due.swap(held_);
  }
  deliver(std::move(due));
}

FaultStats FaultInjectingEndpoint::fault_stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace hyperfile
