#include "net/faulty.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/metrics.hpp"

namespace hyperfile {
namespace {

/// Per-link registry label, e.g. "link=2->0".
std::string link_label(SiteId from, SiteId to) {
  return "link=" + std::to_string(from) + "->" + std::to_string(to);
}

}  // namespace

FaultInjectingEndpoint::FaultInjectingEndpoint(
    std::unique_ptr<MessageEndpoint> inner, FaultOptions options)
    : inner_(std::move(inner)),
      options_(std::move(options)),
      rng_(options_.seed) {}

bool FaultInjectingEndpoint::link_exempt(SiteId to) const {
  if (to == inner_->self()) return true;
  return std::find(options_.exempt.begin(), options_.exempt.end(), to) !=
         options_.exempt.end();
}

std::vector<FaultInjectingEndpoint::Held>
FaultInjectingEndpoint::advance_tick() {
  ++ticks_;
  std::vector<Held> due;
  auto it = held_.begin();
  while (it != held_.end()) {
    if (it->release_at <= ticks_) {
      due.push_back(std::move(*it));
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
  return due;
}

std::vector<SiteId> FaultInjectingEndpoint::drop_crashed(
    std::vector<Held>& frames) {
  std::vector<SiteId> dropped_links;
  if (crashed_.empty()) return dropped_links;
  auto it = frames.begin();
  while (it != frames.end()) {
    if (crashed_.count(it->to) != 0) {
      ++stats_.crash_dropped;
      dropped_links.push_back(it->to);
      it = frames.erase(it);
    } else {
      ++it;
    }
  }
  return dropped_links;
}

void FaultInjectingEndpoint::count_crash_dropped(
    const std::vector<SiteId>& links) {
  for (SiteId to : links) {
    metrics()
        .counter("net.fault.crash_dropped", link_label(inner_->self(), to))
        .inc();
  }
}

void FaultInjectingEndpoint::deliver(std::vector<Held> due) {
  if (due.empty()) return;
  // Late delivery of a frame whose link has died is just another drop; the
  // protocol's retry/TTL machinery owns recovery, so errors are swallowed —
  // but every release and every accepted frame is counted, so the chaos
  // tests can reconcile frames offered against frames that reached the
  // inner endpoint (the conservation laws in faulty.hpp).
  std::uint64_t released = 0;
  std::uint64_t delivered = 0;
  for (auto& h : due) {
    ++released;
    if (inner_->send(h.to, std::move(h.message)).ok()) ++delivered;
  }
  MutexLock lock(mu_);
  stats_.released += released;
  stats_.delivered += delivered;
}

Result<void> FaultInjectingEndpoint::send(SiteId to, wire::Message message) {
  std::vector<Held> due;
  std::vector<SiteId> dead_links;
  enum class Verdict {
    kForward, kDuplicate, kDrop, kHold, kPartitioned, kCrashed
  };
  Verdict verdict = Verdict::kForward;
  std::uint64_t hold = 0;
  {
    MutexLock lock(mu_);
    due = advance_tick();
    dead_links = drop_crashed(due);
    ++stats_.attempts;
    // Crash outranks every other treatment, exemptions included: a dead
    // process is equally dead on an exempt link, and the failure must be
    // *detected* (kClosed), never silently injected away.
    if (crashed_.count(to) != 0) {
      ++stats_.crashed;
      verdict = Verdict::kCrashed;
    } else if (link_exempt(to)) {
      ++stats_.forwarded;
    } else if (all_partitioned_ || partitioned_.count(to) != 0) {
      ++stats_.partitioned;
      verdict = Verdict::kPartitioned;
    } else if (rng_.next_bool(options_.drop_p)) {
      ++stats_.dropped;
      verdict = Verdict::kDrop;
    } else if (rng_.next_bool(options_.reorder_p) ||
               rng_.next_bool(options_.delay_p)) {
      // Reorder holds for exactly one tick (swap with the next frame);
      // delay holds for 2..max_hold_ticks. Held frames are released on
      // later sends *and* recv polls, so nothing is held forever while the
      // event loop keeps turning.
      std::uint32_t span = options_.max_hold_ticks > 2
                               ? static_cast<std::uint32_t>(
                                     2 + rng_.next_below(
                                             options_.max_hold_ticks - 1))
                               : 2;
      hold = rng_.next_bool(options_.reorder_p /
                            (options_.reorder_p + options_.delay_p + 1e-12))
                 ? 1
                 : span;
      ++stats_.held;
      held_.push_back(Held{to, std::move(message), ticks_ + hold});
      verdict = Verdict::kHold;
    } else {
      ++stats_.forwarded;
      if (rng_.next_bool(options_.dup_p)) {
        ++stats_.duplicated;
        verdict = Verdict::kDuplicate;
      }
    }
  }
  // Injected events become registry ground truth, per link, so benches and
  // chaos tests can reconcile loss without peeking inside the injector.
  const std::string link = link_label(inner_->self(), to);
  switch (verdict) {
    case Verdict::kDrop:
      metrics().counter("net.fault.dropped", link).inc();
      break;
    case Verdict::kDuplicate:
      metrics().counter("net.fault.duplicated", link).inc();
      break;
    case Verdict::kHold:
      metrics()
          .counter(hold == 1 ? "net.fault.reordered" : "net.fault.delayed",
                   link)
          .inc();
      break;
    case Verdict::kPartitioned:
      metrics().counter("net.fault.partitioned", link).inc();
      break;
    case Verdict::kCrashed:
      metrics().counter("net.fault.crashed", link).inc();
      break;
    case Verdict::kForward:
      break;
  }
  count_crash_dropped(dead_links);
  deliver(std::move(due));
  switch (verdict) {
    case Verdict::kCrashed:
      // Loud, immediate, detected — exactly what TcpNetwork reports once
      // the peer's fd dies. The caller's repay-and-drop path owns recovery.
      return make_error(Errc::kClosed,
                        "peer " + std::to_string(to) + " crashed");
    case Verdict::kPartitioned:
    case Verdict::kDrop:
    case Verdict::kHold:
      // Silent loss/latency: the wire accepted the frame as far as the
      // sender can tell. Detected failures stay loud — they come from the
      // inner endpoint below.
      return {};
    case Verdict::kDuplicate: {
      wire::Message copy = message;
      auto r = inner_->send(to, std::move(message));
      auto r2 = inner_->send(to, std::move(copy));
      MutexLock lock(mu_);
      if (r.ok()) ++stats_.delivered;
      if (r2.ok()) ++stats_.delivered;
      return r;
    }
    case Verdict::kForward: {
      auto r = inner_->send(to, std::move(message));
      if (r.ok()) {
        MutexLock lock(mu_);
        ++stats_.delivered;
      }
      return r;
    }
  }
  return {};
}

std::optional<wire::Envelope> FaultInjectingEndpoint::recv(Duration timeout) {
  std::vector<Held> due;
  std::vector<SiteId> dead_links;
  {
    MutexLock lock(mu_);
    due = advance_tick();
    dead_links = drop_crashed(due);
  }
  count_crash_dropped(dead_links);
  deliver(std::move(due));
  return inner_->recv(timeout);
}

void FaultInjectingEndpoint::partition(SiteId peer) {
  MutexLock lock(mu_);
  partitioned_.insert(peer);
}

void FaultInjectingEndpoint::heal(SiteId peer) {
  MutexLock lock(mu_);
  partitioned_.erase(peer);
}

void FaultInjectingEndpoint::partition_all() {
  MutexLock lock(mu_);
  all_partitioned_ = true;
}

void FaultInjectingEndpoint::heal_all() {
  MutexLock lock(mu_);
  all_partitioned_ = false;
  partitioned_.clear();
}

void FaultInjectingEndpoint::crash(SiteId peer) {
  std::vector<Held> held;
  std::vector<SiteId> dead_links;
  {
    MutexLock lock(mu_);
    crashed_.insert(peer);
    // Discard in-flight held frames to the peer right away rather than at
    // the next tick: once crashed, nothing may reach it.
    held.swap(held_);
    dead_links = drop_crashed(held);
    held_.swap(held);
  }
  count_crash_dropped(dead_links);
}

void FaultInjectingEndpoint::revive(SiteId peer) {
  MutexLock lock(mu_);
  crashed_.erase(peer);
}

void FaultInjectingEndpoint::flush_held() {
  std::vector<Held> due;
  std::vector<SiteId> dead_links;
  {
    MutexLock lock(mu_);
    due.swap(held_);
    dead_links = drop_crashed(due);
  }
  count_crash_dropped(dead_links);
  deliver(std::move(due));
}

FaultStats FaultInjectingEndpoint::fault_stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace hyperfile
