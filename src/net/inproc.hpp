// In-process message network: one mailbox per endpoint, every message fully
// serialized and deserialized through the wire format. This is the default
// substrate for the threaded multi-site runtime (dist/cluster.hpp) — it has
// real concurrency and real bytes, just no sockets.
#pragma once

#include <memory>
#include <vector>

#include "common/sync.hpp"
#include "net/channel.hpp"
#include "net/endpoint.hpp"

namespace hyperfile {

class InProcNetwork {
 public:
  /// Creates `endpoints` mailboxes with site ids [0, endpoints).
  explicit InProcNetwork(std::size_t endpoints);
  ~InProcNetwork();

  InProcNetwork(const InProcNetwork&) = delete;
  InProcNetwork& operator=(const InProcNetwork&) = delete;

  std::size_t size() const { return mailboxes_.size(); }

  /// Endpoint handle for site `self`. The handle borrows the network; it
  /// must not outlive it.
  std::unique_ptr<MessageEndpoint> endpoint(SiteId self);

  /// Close all mailboxes (unblocks receivers).
  void shutdown();

  /// Close one mailbox: subsequent sends to it fail with kClosed. Used for
  /// failure injection — a crashed site's peers see send errors, exactly as
  /// a TCP connect would fail.
  void close_endpoint(SiteId site);

  /// Re-open a mailbox closed by close_endpoint, discarding any frames that
  /// were queued before the crash: a restarted site rejoins with an empty
  /// mailbox (Cluster::restart_site).
  void reopen_endpoint(SiteId site);

  /// Aggregate traffic statistics (thread-safe snapshot).
  NetworkStats stats() const;

 private:
  friend class InProcEndpoint;

  Result<void> send(SiteId from, SiteId to, wire::Message message);

  std::vector<std::unique_ptr<Channel<wire::Envelope>>> mailboxes_;  // ctor-only
  mutable Mutex stats_mu_;
  NetworkStats stats_ HF_GUARDED_BY(stats_mu_);
};

}  // namespace hyperfile
