// Bounded-blocking MPMC channel used as a site mailbox in the threaded
// runtime. Unbounded by default: HyperFile message volume is bounded by the
// termination-weight protocol (a site cannot flood another without weight).
#pragma once

#include <chrono>
#include <deque>
#include <optional>

#include "common/sync.hpp"
#include "common/types.hpp"

namespace hyperfile {

template <typename T>
class Channel {
 public:
  /// Push an item; returns false if the channel is closed.
  bool push(T item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking pop with timeout. nullopt on timeout or when closed and empty.
  HF_BLOCKING std::optional<T> pop_wait(Duration timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::optional<T> try_pop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Undo close() and discard anything queued — a restarted site must start
  /// from an empty mailbox, not replay traffic addressed to its previous
  /// incarnation (crash-stop semantics, DESIGN.md §13).
  void reopen() {
    MutexLock lock(mu_);
    items_.clear();
    closed_ = false;
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ HF_GUARDED_BY(mu_);
  bool closed_ HF_GUARDED_BY(mu_) = false;
};

}  // namespace hyperfile
