// Bounded-blocking MPMC channel used as a site mailbox in the threaded
// runtime. Unbounded by default: HyperFile message volume is bounded by the
// termination-weight protocol (a site cannot flood another without weight).
#pragma once

#include <chrono>
#include <deque>
#include <optional>

#include "common/sync.hpp"
#include "common/types.hpp"

namespace hyperfile {

template <typename T>
class Channel {
 public:
  /// Push an item; returns false if the channel is closed.
  bool push(T item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking pop with timeout. nullopt on timeout, on interrupt(), or when
  /// closed and empty.
  HF_BLOCKING std::optional<T> pop_wait(Duration timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (items_.empty() && !closed_ && interrupts_ == 0) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    if (interrupts_ > 0) interrupts_ = 0;  // consumed: one wake per waiter
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wake one parked pop_wait early (it returns as if it timed out). The
  /// wake is latched, not edge-triggered: an interrupt landing between two
  /// pop_wait calls is consumed by the next one instead of being lost —
  /// exactly the readiness semantics MessageEndpoint::wake_recv() needs.
  void interrupt() {
    {
      MutexLock lock(mu_);
      ++interrupts_;
    }
    cv_.notify_all();
  }

  std::optional<T> try_pop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Undo close() and discard anything queued — a restarted site must start
  /// from an empty mailbox, not replay traffic addressed to its previous
  /// incarnation (crash-stop semantics, DESIGN.md §13).
  void reopen() {
    MutexLock lock(mu_);
    items_.clear();
    closed_ = false;
    interrupts_ = 0;  // wakes meant for the previous incarnation die with it
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ HF_GUARDED_BY(mu_);
  bool closed_ HF_GUARDED_BY(mu_) = false;
  std::uint64_t interrupts_ HF_GUARDED_BY(mu_) = 0;
};

}  // namespace hyperfile
