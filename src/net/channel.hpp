// Bounded-blocking MPMC channel used as a site mailbox in the threaded
// runtime. Unbounded by default: HyperFile message volume is bounded by the
// termination-weight protocol (a site cannot flood another without weight).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/types.hpp"

namespace hyperfile {

template <typename T>
class Channel {
 public:
  /// Push an item; returns false if the channel is closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking pop with timeout. nullopt on timeout or when closed and empty.
  std::optional<T> pop_wait(Duration timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hyperfile
