// TCP message network.
//
// The 1991 prototype ran over UDP and TCP/IP on a network of IBM PC/RTs;
// this is the modern equivalent for deployments where sites are separate
// processes (or separate machines). Frames are length-prefixed wire
// envelopes:
//
//   [u32 big-endian frame length][envelope bytes]
//
// Each TcpNetwork instance is one endpoint: it listens on its own port and
// lazily opens one outbound connection per peer (reconnecting on failure).
// Incoming frames from all accepted connections are decoded and funneled
// into a single mailbox, giving the same MessageEndpoint semantics as the
// in-process network.
//
// Learned routes: when a frame arrives from a site not in the static peer
// table (e.g. a client on an ephemeral port), the accepted connection is
// remembered and replies flow back over it. This is how `hfq` clients talk
// to `hyperfiled` servers without being in anyone's configuration.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "net/channel.hpp"
#include "net/endpoint.hpp"

namespace hyperfile {

struct TcpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class TcpNetwork final : public MessageEndpoint {
 public:
  /// `peers[i]` is where site i listens; `self` may index into it (its port
  /// is then the listen port) or lie outside the table (client endpoints:
  /// an ephemeral port is used — see bound_port()). Port 0 also picks an
  /// ephemeral port.
  static Result<std::unique_ptr<TcpNetwork>> create(SiteId self,
                                                    std::vector<TcpPeer> peers);

  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  SiteId self() const override { return self_; }
  std::uint16_t bound_port() const { return bound_port_; }

  Result<void> send(SiteId to, wire::Message message) override;
  HF_BLOCKING std::optional<wire::Envelope> recv(Duration timeout) override;

  /// Update a peer's address (e.g. after it bound an ephemeral port).
  /// Drops any cached connection to that peer.
  void update_peer(SiteId site, TcpPeer peer);

  void shutdown();

  NetworkStats stats() const;

  /// True if a cached outbound connection or learned route to `to` exists.
  /// Observability hook for tests: a dead fd must disappear from here once
  /// its reader exits, so the next send reconnects instead of failing.
  bool has_route(SiteId to) const;

 private:
  TcpNetwork(SiteId self, std::vector<TcpPeer> peers);

  Result<void> start_listener();
  void accept_loop();
  void reader_loop(int fd);
  /// Start a frame reader on `fd` and register it for shutdown/close.
  /// Connections are full-duplex: replies may arrive on outbound sockets.
  void spawn_reader(int fd);
  Result<int> peer_socket(SiteId to);

  SiteId self_;
  std::uint16_t bound_port_ = 0;   // written once by start_listener()
  int listen_fd_ = -1;             // written once by start_listener()
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  Mutex readers_mu_;
  std::vector<std::thread> readers_ HF_GUARDED_BY(readers_mu_);
  /// Every socket with a reader; owns closing.
  std::vector<int> reader_fds_ HF_GUARDED_BY(readers_mu_);

  /// Guards the routing tables. Ordering: conn_mu_ may be held while
  /// acquiring readers_mu_ (peer_socket -> spawn_reader); never the reverse.
  mutable Mutex conn_mu_ HF_ACQUIRED_BEFORE(readers_mu_);
  std::vector<TcpPeer> peers_ HF_GUARDED_BY(conn_mu_);
  std::map<SiteId, int> conns_ HF_GUARDED_BY(conn_mu_);    // outbound by peer
  std::map<SiteId, int> learned_ HF_GUARDED_BY(conn_mu_);  // inbound by sender
  Mutex send_mu_;  // serializes frame writes (guards the socket streams)

  Channel<wire::Envelope> inbox_;

  mutable Mutex stats_mu_;
  NetworkStats stats_ HF_GUARDED_BY(stats_mu_);
};

}  // namespace hyperfile
