// Thread-per-connection TCP message network.
//
// The 1991 prototype ran over UDP and TCP/IP on a network of IBM PC/RTs;
// this is the modern equivalent for deployments where sites are separate
// processes (or separate machines). Frames are length-prefixed wire
// envelopes:
//
//   [u32 big-endian frame length][envelope bytes]
//
// Each TcpNetwork instance is one endpoint: it listens on its own port and
// lazily opens one outbound connection per peer (reconnecting on failure).
// Incoming frames from all accepted connections are decoded and funneled
// into a single mailbox, giving the same MessageEndpoint semantics as the
// in-process network.
//
// Learned routes: when a frame arrives from a site not in the static peer
// table (e.g. a client on an ephemeral port), the accepted connection is
// remembered and replies flow back over it. This is how `hfq` clients talk
// to `hyperfiled` servers without being in anyone's configuration.
//
// Concurrency contract (DESIGN.md §17): sends to different peers never
// block each other — each connection carries its own send lock, so one peer
// with a full socket buffer stalls only its own frames. Blocking connects
// happen outside every lock, so route learning and has_route() stay
// responsive while a dead peer times out. Readers that exit (peer EOF,
// reset, failed send) are reaped — joined, their fds closed — by the next
// spawn/stat/shutdown instead of accumulating for the process lifetime.
//
// This backend spawns one reader thread per connection; for hundreds of
// connections use the event-driven backend (net/epoll.hpp) behind the same
// SocketTransport interface.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "net/channel.hpp"
#include "net/transport.hpp"

namespace hyperfile {

class TcpNetwork final : public SocketTransport {
 public:
  /// `peers[i]` is where site i listens; `self` may index into it (its port
  /// is then the listen port) or lie outside the table (client endpoints:
  /// an ephemeral port is used — see bound_port()). Port 0 also picks an
  /// ephemeral port.
  static Result<std::unique_ptr<TcpNetwork>> create(SiteId self,
                                                    std::vector<TcpPeer> peers);

  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  SiteId self() const override { return self_; }
  std::uint16_t bound_port() const override { return bound_port_; }

  Result<void> send(SiteId to, wire::Message message) override;
  HF_BLOCKING std::optional<wire::Envelope> recv(Duration timeout) override;

  void update_peer(SiteId site, TcpPeer peer) override;

  void shutdown() override;

  NetworkStats stats() const override;

  bool has_route(SiteId to) const override;

  /// Reader threads currently alive (reaps exited ones first). Regression
  /// hook for the churn fd/thread leak: after N sequential connect/close
  /// cycles this must stay O(1), not O(N).
  std::size_t live_readers();

 private:
  /// One socket with its own send lock: a stalled write to one peer must
  /// not serialize sends to every other peer (the head-of-line-blocking
  /// bug this struct replaced a single global send mutex to fix).
  struct Conn {
    explicit Conn(int fd_in) : fd(fd_in) {}
    const int fd;
    Mutex send_mu;
    /// Set (under send_mu) by the reaper just before it closes `fd`; a
    /// sender that raced the teardown sees it instead of writing into a
    /// possibly-reused file descriptor.
    bool dead HF_GUARDED_BY(send_mu) = false;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  /// A reader thread and the connection it owns. `done` flips when the
  /// loop exits; the next reap joins the thread and closes the fd.
  struct Reader {
    explicit Reader(ConnPtr conn_in) : conn(std::move(conn_in)) {}
    std::thread thread;
    ConnPtr conn;
    std::atomic<bool> done{false};
  };

  TcpNetwork(SiteId self, std::vector<TcpPeer> peers);

  Result<void> start_listener();
  void accept_loop();
  void reader_loop(const ConnPtr& conn);
  /// Start a frame reader on `conn` and register it for reaping/shutdown.
  /// Connections are full-duplex: replies may arrive on outbound sockets.
  void spawn_reader(ConnPtr conn);
  /// Join-and-close every exited reader; returns how many remain. Called
  /// opportunistically from the accept/connect paths and live_readers(),
  /// and exhaustively from shutdown().
  std::size_t reap_readers();
  Result<ConnPtr> peer_conn(SiteId to);
  /// Drop every route through `conn` and wake its parked reader by shutting
  /// the socket down; the reaper then closes the fd. Used on send failure —
  /// including learned-only routes, whose readers previously stayed parked
  /// on a dead socket forever.
  void drop_conn_routes(SiteId to, const ConnPtr& conn);

  SiteId self_;
  std::uint16_t bound_port_ = 0;   // written once by start_listener()
  int listen_fd_ = -1;             // written once by start_listener()
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  Mutex readers_mu_;
  std::vector<std::unique_ptr<Reader>> readers_ HF_GUARDED_BY(readers_mu_);

  /// Guards the routing tables. Ordering: conn_mu_ may be held while
  /// acquiring readers_mu_ (peer_conn -> spawn_reader); never the reverse.
  /// Blocking syscalls (connect) are made with NO lock held.
  mutable Mutex conn_mu_ HF_ACQUIRED_BEFORE(readers_mu_);
  std::vector<TcpPeer> peers_ HF_GUARDED_BY(conn_mu_);
  std::map<SiteId, ConnPtr> conns_ HF_GUARDED_BY(conn_mu_);    // outbound
  std::map<SiteId, ConnPtr> learned_ HF_GUARDED_BY(conn_mu_);  // inbound

  Channel<wire::Envelope> inbox_;

  mutable Mutex stats_mu_;
  NetworkStats stats_ HF_GUARDED_BY(stats_mu_);
};

}  // namespace hyperfile
