#include "term/weight.hpp"

#include <cstdio>
#include <stdexcept>

namespace hyperfile {

bool Weight::is_zero() const {
  for (bool b : bits_) {
    if (b) return false;
  }
  return true;
}

bool Weight::is_one() const {
  if (bits_.empty() || !bits_[0]) return false;
  for (std::size_t i = 1; i < bits_.size(); ++i) {
    if (bits_[i]) return false;
  }
  return true;
}

void Weight::add(const Weight& other) {
  for (std::size_t e = 0; e < other.bits_.size(); ++e) {
    if (!other.bits_[e]) continue;
    if (bits_.size() <= e) bits_.resize(e + 1, false);
    // Add the unit 2^-e, carrying upward (two units 2^-i == one 2^-(i-1)).
    std::size_t i = e;
    while (bits_[i]) {
      bits_[i] = false;
      if (i == 0) {
        // The protocol invariant (global weights sum to exactly 1) makes a
        // carry past the unit impossible; reaching here is a logic error.
        throw std::logic_error("Weight::add overflow past 1");
      }
      --i;
    }
    bits_[i] = true;
  }
  // The carry loop only detects a chain running past the unit; a sum like
  // 1 + 1/2 lands in an empty slot and slips through as {1, 1/2}. Any state
  // with the unit plus a fraction exceeds 1 (distinct fractions alone sum to
  // < 1), which the protocol invariant makes impossible — e.g. a replayed
  // weight-carrying message credited twice.
  if (!bits_.empty() && bits_[0]) {
    for (std::size_t i = 1; i < bits_.size(); ++i) {
      if (bits_[i]) throw std::logic_error("Weight::add overflow past 1");
    }
  }
  trim();
}

Weight Weight::split() {
  // Split the largest unit present (smallest exponent) so exponents grow as
  // slowly as possible.
  std::size_t e = 0;
  while (e < bits_.size() && !bits_[e]) ++e;
  if (e == bits_.size()) {
    throw std::logic_error("Weight::split on zero weight");
  }
  bits_[e] = false;
  Weight half;
  half.bits_.assign(e + 2, false);
  half.bits_[e + 1] = true;
  add(half);  // keep one 2^-(e+1) ourselves (merges with carries if needed)
  return half;
}

Weight Weight::take_all() {
  Weight all;
  all.bits_ = std::move(bits_);
  bits_.clear();
  return all;
}

std::vector<std::uint32_t> Weight::exponents() const {
  std::vector<std::uint32_t> out;
  for (std::size_t e = 0; e < bits_.size(); ++e) {
    if (bits_[e]) out.push_back(static_cast<std::uint32_t>(e));
  }
  return out;
}

Weight Weight::from_exponents(const std::vector<std::uint32_t>& exps) {
  Weight w;
  for (std::uint32_t e : exps) {
    Weight unit;
    unit.bits_.assign(e + 1, false);
    unit.bits_[e] = true;
    w.add(unit);
  }
  return w;
}

double Weight::approx() const {
  double v = 0.0;
  double unit = 1.0;
  for (std::size_t e = 0; e < bits_.size(); ++e) {
    if (bits_[e]) v += unit;
    unit *= 0.5;
  }
  return v;
}

bool operator==(const Weight& a, const Weight& b) {
  const std::size_t n = std::max(a.bits_.size(), b.bits_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const bool ba = i < a.bits_.size() && a.bits_[i];
    const bool bb = i < b.bits_.size() && b.bits_[i];
    if (ba != bb) return false;
  }
  return true;
}

std::string Weight::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "w(%.6g)", approx());
  return buf;
}

void Weight::trim() {
  while (!bits_.empty() && !bits_.back()) bits_.pop_back();
}

}  // namespace hyperfile
