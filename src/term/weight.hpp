// Exact binary-fraction weights for the weighted-message termination
// detection algorithm (Huang 1989 / Mattern 1987), which the paper adopts
// for HyperFile query termination (Section 4).
//
// The scheme: the query originator starts with weight 1. Every message about
// the computation carries part of the sender's weight; a site that becomes
// idle returns all weight it holds to the originator. The computation has
// terminated exactly when the originator is idle and has recovered weight 1.
//
// Floating point is the classic implementation hazard here — repeated
// halving underflows and the invariant "weights sum to exactly 1" silently
// breaks. Weight is therefore an exact dyadic fraction: a set of units
// 2^-e, stored as one bit per exponent. Splitting a unit 2^-e yields two
// units 2^-(e+1) — precisely representable, always; recombination is binary
// addition with carries. The originator's "have I recovered weight 1?" test
// is exact, so termination is never falsely detected nor missed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyperfile {

class Weight {
 public:
  /// Weight zero.
  Weight() = default;

  static Weight one() {
    Weight w;
    w.bits_ = {true};
    return w;
  }
  static Weight zero() { return Weight(); }

  bool is_zero() const;
  bool is_one() const;

  /// Adds `other` into this weight (exact binary addition).
  void add(const Weight& other);

  /// Removes and returns a nonzero portion (roughly half) of this weight.
  /// Precondition: !is_zero(). Postcondition: neither part is zero.
  Weight split();

  /// Removes and returns the entire weight, leaving zero behind.
  Weight take_all();

  /// Exponents of the constituent units: value = sum over e of 2^-e.
  /// Canonical (each exponent appears at most once). Used by the wire codec.
  std::vector<std::uint32_t> exponents() const;
  static Weight from_exponents(const std::vector<std::uint32_t>& exps);

  /// Approximate double value, for logging/metrics only.
  double approx() const;

  friend bool operator==(const Weight& a, const Weight& b);
  friend bool operator!=(const Weight& a, const Weight& b) { return !(a == b); }

  std::string to_string() const;

 private:
  void trim();
  // bits_[e] == true  <=>  a unit 2^-e is present. bits_[0] is the unit 1.
  std::vector<bool> bits_;
};

}  // namespace hyperfile
