// Weighted-message termination detection, originator and participant sides
// (paper Section 4: "One that is particularly appropriate to HyperFile is
// the weighted messages algorithm, which has been implemented in our
// prototype").
//
// Protocol:
//  * The originator creates the query holding weight 1.
//  * Every computation message (remote dereference, start-query) carries a
//    nonzero portion of the sender's held weight.
//  * A participant accumulates the weight of every message it receives; when
//    its local working set drains it sends all held weight back to the
//    originator (piggybacked on the result message).
//  * Termination: the originator's working set is empty and it has recovered
//    weight exactly 1.
//
// Safety: weights are conserved, so weight 1 at an idle originator implies
// no message is in flight and no participant holds work. Liveness: every
// drain returns weight, and weights are exact dyadic fractions (term/weight
// .hpp), so the sum reaches exactly 1.
//
// Thread ownership (DESIGN.md §10): deliberately lock-free. Originator and
// participant state is confined to the owning site's event-loop thread;
// weight is borrowed for outgoing messages only after ParallelExecution's
// pool join (workers provably idle), so no cross-thread access exists to
// synchronize. The TSan CI job dynamically checks this confinement.
#pragma once

#include "term/weight.hpp"

namespace hyperfile {

/// Originator side: holds the residual weight and judges termination.
class WeightedTerminationOriginator {
 public:
  WeightedTerminationOriginator() : held_(Weight::one()) {}

  /// Weight to attach to an outgoing computation message.
  Weight borrow() { return held_.split(); }

  /// Weight returned by a participant (or by our own completed local work).
  void repay(Weight w) { held_.add(w); }

  /// True iff all weight has come home. The caller must additionally check
  /// that its own working set is empty before declaring termination.
  bool all_weight_home() const { return held_.is_one(); }

  const Weight& held() const { return held_; }

 private:
  Weight held_;
};

/// Participant side: accumulates incoming weight, releases it on drain.
class WeightedTerminationParticipant {
 public:
  /// Record the weight carried by an incoming computation message.
  void receive(Weight w) { held_.add(std::move(w)); }

  /// Weight to attach when this participant itself forwards a computation
  /// message (chasing a pointer onward to a third site).
  /// Precondition: holding nonzero weight (an active participant always is —
  /// activity began with a weighted message).
  Weight borrow() { return held_.split(); }

  /// Working set drained: surrender everything for the result message.
  Weight release_all() { return held_.take_all(); }

  bool holding() const { return !held_.is_zero(); }
  const Weight& held() const { return held_; }

 private:
  Weight held_;
};

}  // namespace hyperfile
