// Dijkstra-Scholten diffusing-computation termination detection.
//
// Included as a second, independent detector so the property tests can
// cross-check the weighted-message implementation (term/weighted.hpp): on
// identical message traces both must report termination at the same point.
// It is also the natural choice when message piggybacking is unavailable,
// since it needs only signal (ack) edges, not weight fields.
//
// Protocol recap: computation messages build a dynamic engagement tree
// rooted at the originator. Every computation message is eventually
// acknowledged; a node acknowledges its *engaging* message (the one that
// made it active) only once it is idle and has itself been acknowledged for
// every message it sent. Termination = the root is idle with no outstanding
// acknowledgements.
//
// Thread ownership (DESIGN.md §10): deliberately lock-free. A node's state
// is confined to its site's event-loop thread — drain workers never touch
// termination accounting (ParallelExecution buffers their side effects
// until the pool joins), so adding a mutex here would annotate a race that
// cannot occur while hiding the confinement that prevents it.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/types.hpp"

namespace hyperfile {

/// Per-node state of the Dijkstra-Scholten algorithm. The transport is
/// external: the node tells the caller when to emit an ack via the
/// `ready_to_detach` test, and the caller routes acks back with `on_ack`.
class DijkstraScholtenNode {
 public:
  explicit DijkstraScholtenNode(SiteId self, bool is_root = false)
      : self_(self), is_root_(is_root), engaged_(is_root) {}

  SiteId self() const { return self_; }
  bool is_root() const { return is_root_; }
  bool engaged() const { return engaged_; }
  std::uint64_t deficit() const { return deficit_; }
  std::optional<SiteId> parent() const { return parent_; }

  /// A computation message arrives from `from`. Returns true if this
  /// message engaged the node (no ack yet — it becomes the tree edge);
  /// returns false if the node was already engaged and the caller must send
  /// an immediate ack to `from`.
  bool on_message(SiteId from) {
    if (!engaged_) {
      engaged_ = true;
      parent_ = from;
      return true;
    }
    return false;
  }

  /// Record sending a computation message (increases our deficit).
  void on_send() { ++deficit_; }

  /// An ack for one of our computation messages arrived.
  void on_ack() {
    assert(deficit_ > 0);
    --deficit_;
  }

  /// Mark local work drained / resumed.
  void set_idle(bool idle) { idle_ = idle; }
  bool idle() const { return idle_; }

  /// True when this (non-root) node should detach: ack its engaging message
  /// and become disengaged. The caller sends the ack to *parent()* and then
  /// calls detach().
  bool ready_to_detach() const {
    return engaged_ && !is_root_ && idle_ && deficit_ == 0;
  }

  void detach() {
    assert(ready_to_detach());
    engaged_ = false;
    parent_.reset();
  }

  /// Root-side termination test.
  bool terminated() const { return is_root_ && idle_ && deficit_ == 0; }

 private:
  SiteId self_;
  bool is_root_;
  bool engaged_;
  bool idle_ = true;
  std::uint64_t deficit_ = 0;
  std::optional<SiteId> parent_;
};

}  // namespace hyperfile
