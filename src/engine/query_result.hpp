// Client-facing query result.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/trace.hpp"
#include "engine/execution.hpp"

namespace hyperfile {

struct QueryResult {
  /// Objects that passed every filter (a set: no duplicates).
  std::vector<ObjectId> ids;
  /// Values captured by -> retrieval patterns.
  std::vector<Retrieved> values;
  /// Slot names from the query, aligned with Retrieved::slot.
  std::vector<std::string> slot_names;
  /// In count_only (distributed-set) mode: total result-set size; the
  /// members stay distributed at the sites under the result set name.
  std::uint64_t total_count = 0;
  bool count_only = false;
  /// Degraded answer (distributed runtime only): the originating site
  /// force-finished on its context TTL or some site reported lost work.
  /// The ids/values present are all correct — possibly just not all of
  /// them (paper Section 1: "partial results are better than none at
  /// all").
  bool partial = false;
  /// Work items known to have been lost producing this result.
  std::uint64_t dropped_items = 0;
  EngineStats stats;
  /// Per-site execution trace (distributed runtime only; empty for local
  /// execution). See common/trace.hpp for the span semantics.
  QueryTrace trace;

  bool contains(const ObjectId& id) const {
    return std::find(ids.begin(), ids.end(), id) != ids.end();
  }

  /// All values retrieved into the named slot (e.g. every "title").
  std::vector<Value> values_for(const std::string& slot_name) const {
    std::vector<Value> out;
    for (std::size_t slot = 0; slot < slot_names.size(); ++slot) {
      if (slot_names[slot] != slot_name) continue;
      for (const auto& r : values) {
        if (r.slot == slot) out.push_back(r.value);
      }
    }
    return out;
  }

  /// Sort ids for deterministic comparison in tests.
  void sort() {
    std::sort(ids.begin(), ids.end());
    std::sort(values.begin(), values.end(),
              [](const Retrieved& a, const Retrieved& b) {
                if (a.slot != b.slot) return a.slot < b.slot;
                if (a.source != b.source) return a.source < b.source;
                return a.value < b.value;
              });
  }
};

}  // namespace hyperfile
