// Client-facing query result.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "engine/execution.hpp"

namespace hyperfile {

struct QueryResult {
  /// Objects that passed every filter (a set: no duplicates).
  std::vector<ObjectId> ids;
  /// Values captured by -> retrieval patterns.
  std::vector<Retrieved> values;
  /// Slot names from the query, aligned with Retrieved::slot.
  std::vector<std::string> slot_names;
  /// In count_only (distributed-set) mode: total result-set size; the
  /// members stay distributed at the sites under the result set name.
  std::uint64_t total_count = 0;
  bool count_only = false;
  EngineStats stats;

  bool contains(const ObjectId& id) const {
    return std::find(ids.begin(), ids.end(), id) != ids.end();
  }

  /// All values retrieved into the named slot (e.g. every "title").
  std::vector<Value> values_for(const std::string& slot_name) const {
    std::vector<Value> out;
    for (std::size_t slot = 0; slot < slot_names.size(); ++slot) {
      if (slot_names[slot] != slot_name) continue;
      for (const auto& r : values) {
        if (r.slot == slot) out.push_back(r.value);
      }
    }
    return out;
  }

  /// Sort ids for deterministic comparison in tests.
  void sort() {
    std::sort(ids.begin(), ids.end());
    std::sort(values.begin(), values.end(),
              [](const Retrieved& a, const Retrieved& b) {
                if (a.slot != b.slot) return a.slot < b.slot;
                if (a.source != b.source) return a.source < b.source;
                return a.value < b.value;
              });
  }
};

}  // namespace hyperfile
