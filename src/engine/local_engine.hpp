// Single-site query engine: the whole database lives in one SiteStore and
// queries run to completion locally (the paper's single-machine baseline
// configuration). This is the simplest way to use HyperFile:
//
//   SiteStore store(0);
//   ... populate, store.create_set("S", ids) ...
//   LocalEngine engine(store);
//   QueryResult r = engine.run(parse_query(
//       "S [ (pointer, \"Reference\", ?X) | ^^X ]3"
//       " (keyword, \"Distributed\", ?) -> T").value());
//
// After a run, the result set is materialized in the store under the
// query's result name, so follow-up queries can start from it.
#pragma once

#include "engine/query_result.hpp"
#include "store/site_store.hpp"

namespace hyperfile {

class LocalEngine {
 public:
  explicit LocalEngine(SiteStore& store,
                       WorkSetDiscipline discipline = WorkSetDiscipline::kFifo)
      : store_(store), discipline_(discipline) {}

  /// Run the query to completion. Binds the result set name (if any) in the
  /// store so later queries can use it as an initial set.
  Result<QueryResult> run(const Query& query);

  /// As run(), but does not touch the store (no result-set binding) —
  /// usable when the store is shared read-only across threads.
  Result<QueryResult> run_readonly(const Query& query) const;

  SiteStore& store() { return store_; }

 private:
  SiteStore& store_;
  WorkSetDiscipline discipline_;
};

}  // namespace hyperfile
