// Per-object processing state (paper Section 3).
//
// While a query runs, each object in flight carries:
//   * id     — O.id, used to fetch the object;
//   * start  — O.start, the first filter to process the object (1 for the
//              initial set; dereferenced objects enter at the filter after
//              the dereference);
//   * next   — O.next, the next filter index to apply;
//   * iter   — O.iter#, the pointer-chain depth. The paper notes that with
//              nested iterators this is "actually a stack of iteration
//              numbers": the top entry is the innermost enclosing loop's
//              count; a dereference copies the stack and increments only the
//              top entry.
//   * mvars  — O.mvars, matching-variable bindings. Transient: bindings are
//              rebuilt on every processing pass ("O.mvars always starts as
//              {}"), which is what makes distribution cheap — a remote
//              dereference ships only (id, start, iter).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/value.hpp"

namespace hyperfile {

class MatchBindings {
 public:
  /// Bind a value to `var` (set semantics: duplicates ignored).
  void bind(const std::string& var, const Value& v) {
    auto& vals = vars_[var];
    for (const auto& existing : vals) {
      if (existing == v) return;
    }
    vals.push_back(v);
  }

  /// Values bound to `var`, or nullptr if none.
  const std::vector<Value>* lookup(const std::string& var) const {
    auto it = vars_.find(var);
    return it == vars_.end() ? nullptr : &it->second;
  }

  bool contains(const std::string& var, const Value& v) const {
    const auto* vals = lookup(var);
    if (vals == nullptr) return false;
    for (const auto& existing : *vals) {
      if (existing == v) return true;
    }
    return false;
  }

  void clear() { vars_.clear(); }
  bool empty() const { return vars_.empty(); }

 private:
  std::unordered_map<std::string, std::vector<Value>> vars_;
};

struct WorkItem {
  ObjectId id;
  std::uint32_t start = 1;
  std::uint32_t next = 1;
  /// Iteration-number stack; back() is the innermost loop. Never empty once
  /// initialized (the base entry is the paper's flat iter# = 1).
  std::vector<std::uint32_t> iter_stack{1};
  MatchBindings mvars;

  static WorkItem initial(ObjectId id) {
    WorkItem w;
    w.id = id;
    return w;
  }

  std::uint32_t iter_top() const {
    return iter_stack.empty() ? 1 : iter_stack.back();
  }
};

}  // namespace hyperfile
