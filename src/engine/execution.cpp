#include "engine/execution.hpp"

#include <algorithm>
#include <cassert>

namespace hyperfile {

EngineStats& EngineStats::operator+=(const EngineStats& o) {
  pops += o.pops;
  processed += o.processed;
  suppressed += o.suppressed;
  missing += o.missing;
  filters_applied += o.filters_applied;
  tuples_scanned += o.tuples_scanned;
  derefs_followed += o.derefs_followed;
  remote_handoffs += o.remote_handoffs;
  results += o.results;
  duplicate_results += o.duplicate_results;
  retrieved_values += o.retrieved_values;
  max_working_set = std::max(max_working_set, o.max_working_set);
  steals += o.steals;
  stolen_items += o.stolen_items;
  queue_wait_us += o.queue_wait_us;
  return *this;
}

QueryExecution::QueryExecution(const Query& query, const SiteStore& store,
                               ExecutionOptions options)
    : query_(query),
      store_(store),
      options_(std::move(options)),
      work_(options_.discipline),
      marks_(query_.size()) {}

Result<void> QueryExecution::seed_initial() {
  std::vector<ObjectId> ids = query_.initial_ids();
  if (!query_.initial_set_name().empty()) {
    auto members = store_.set_members(query_.initial_set_name());
    if (!members.ok()) return members.error();
    const auto& m = members.value();
    ids.insert(ids.end(), m.begin(), m.end());
  }
  for (const ObjectId& id : ids) {
    WorkItem item = WorkItem::initial(id);
    normalize_iter_stack(query_, item);
    route(std::move(item), nullptr);
  }
  return {};
}

void QueryExecution::seed_local_set(const std::string& name) {
  auto members = store_.set_members(name);
  if (!members.ok()) return;  // no local portion: contribute nothing
  for (const ObjectId& id : members.value()) {
    WorkItem item = WorkItem::initial(id);
    normalize_iter_stack(query_, item);
    route(std::move(item), nullptr);
  }
}

void QueryExecution::add_item(WorkItem item) {
  // Arrivals carry (id, start, iter#) only; next and bindings are reset
  // locally (paper Section 3.2: "O.next set to O.start, O.mvars set to {}").
  item.next = item.start;
  item.mvars.clear();
  normalize_iter_stack(query_, item);
  work_.push(std::move(item));
  stats_.max_working_set =
      std::max<std::uint64_t>(stats_.max_working_set, work_.size());
}

void QueryExecution::route(WorkItem&& item, StepReport* report) {
  const bool local = !options_.is_local || options_.is_local(item.id);
  if (local) {
    work_.push(std::move(item));
    stats_.max_working_set = std::max<std::uint64_t>(stats_.max_working_set,
                                                     work_.size());
    if (report != nullptr) ++report->local_enqueues;
  } else {
    ++stats_.remote_handoffs;
    if (report != nullptr) ++report->remote_handoffs;
    assert(options_.remote_sink);
    options_.remote_sink(std::move(item));
  }
}

StepReport QueryExecution::step() {
  StepReport report;
  if (work_.empty()) return report;

  WorkItem item = work_.pop();
  ++stats_.pops;

  // Pop-time guard: has this object already been processed from (or
  // through) its entry filter here? (The naive ablation ignores the entry
  // filter and suppresses any previously seen object.)
  const bool marked = options_.naive_whole_object_marking
                          ? marks_.test_any(item.id)
                          : marks_.test(item.id, item.start);
  if (marked) {
    ++stats_.suppressed;
    report.kind = StepKind::kSuppressed;
    return report;
  }

  const Object* obj = store_.get(item.id);
  if (obj == nullptr) {
    ++stats_.missing;
    report.kind = StepKind::kMissing;
    if (options_.missing_sink) options_.missing_sink(item.id);
    return report;
  }

  ++stats_.processed;
  report.kind = StepKind::kProcessed;

  EStats estats;
  const std::uint32_t n = query_.size();
  bool alive = true;
  EOutcome& out = scratch_;  // reused across items: steady-state alloc-free
  while (alive && item.next <= n) {
    marks_.set(item.id, item.next);
    ++stats_.filters_applied;
    apply_filter(query_, item, obj, out, &estats);
    for (WorkItem& child : out.derefs) {
      route(std::move(child), &report);
    }
    for (Retrieved& r : out.retrieved) {
      if (retrieved_seen_.emplace(r.slot, r.source, r.value).second) {
        retrieved_.push_back(std::move(r));
        ++stats_.retrieved_values;
        ++report.values_retrieved;
      }
    }
    alive = out.alive;
  }
  stats_.tuples_scanned += estats.tuples_scanned;
  stats_.derefs_followed += estats.derefs_followed;

  if (alive) {
    // Mark the "past the end" position too, so a later dereference that
    // enters at n+1 is recognized as already-delivered.
    marks_.set(item.id, n + 1);
    if (result_members_.insert(item.id).second) {
      result_ids_.push_back(item.id);
      ++stats_.results;
      ++report.results_added;
    } else {
      ++stats_.duplicate_results;
    }
  }
  return report;
}

void QueryExecution::drain() {
  while (!work_.empty()) step();
}

std::vector<ObjectId> QueryExecution::take_result_ids() {
  std::vector<ObjectId> batch(result_ids_.begin() +
                                  static_cast<std::ptrdiff_t>(result_take_cursor_),
                              result_ids_.end());
  result_take_cursor_ = result_ids_.size();
  return batch;
}

std::vector<Retrieved> QueryExecution::take_retrieved() {
  std::vector<Retrieved> batch(
      retrieved_.begin() + static_cast<std::ptrdiff_t>(retrieved_take_cursor_),
      retrieved_.end());
  retrieved_take_cursor_ = retrieved_.size();
  return batch;
}

}  // namespace hyperfile
