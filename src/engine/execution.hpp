// QueryExecution: the Figure 3 algorithm, usable both standalone (a single
// site processing everything) and as the per-site half of the distributed
// algorithm (Section 3.2).
//
// The execution owns the query's per-site state: working set W, mark table,
// and accumulated results. Work enters via seed_initial() (at the
// originator) or add_item() (remote dereference arrivals); step()/drain()
// process it. Dereferenced ids that the locality predicate rejects are
// handed to the remote sink instead of entering W — "send the query, not
// the data".
//
// There is deliberately *no* global state beyond this object plus the store:
// the paper stresses that an object in the set can be processed knowing only
// the query, the object, and the local mark table.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "common/sync.hpp"
#include "engine/efunction.hpp"
#include "engine/mark_table.hpp"
#include "engine/work_set.hpp"
#include "store/site_store.hpp"

namespace hyperfile {

struct EngineStats {
  std::uint64_t pops = 0;                // items taken from W
  std::uint64_t processed = 0;           // items that ran through filters
  std::uint64_t suppressed = 0;          // items skipped via the mark table
  std::uint64_t missing = 0;             // ids not found in the store
  std::uint64_t filters_applied = 0;
  std::uint64_t tuples_scanned = 0;
  std::uint64_t derefs_followed = 0;
  std::uint64_t remote_handoffs = 0;     // items routed to the remote sink
  std::uint64_t results = 0;             // ids added to the result set
  std::uint64_t duplicate_results = 0;   // result-set dedup hits
  std::uint64_t retrieved_values = 0;
  std::uint64_t max_working_set = 0;     // peak |W| (search-order dependent)
  // Parallel-drain counters (zero for serial engines; DESIGN.md §14).
  std::uint64_t steals = 0;              // successful steal operations
  std::uint64_t stolen_items = 0;        // items moved by those steals
  std::uint64_t queue_wait_us = 0;       // worker time parked waiting for work

  EngineStats& operator+=(const EngineStats& o);
};

struct ExecutionOptions {
  WorkSetDiscipline discipline = WorkSetDiscipline::kFifo;
  /// Ablation (bench_marktable): mark whole objects instead of (object,
  /// filter-index) pairs. This is the naive cycle-prevention the paper's
  /// Section 3.1 subtlety argues against — an object seen (and failed) at
  /// filter F1 would never be reprocessed when later dereferenced into F3,
  /// silently losing results. Off everywhere except the ablation.
  bool naive_whole_object_marking = false;
  /// Is this object stored at this site? Default: everything is local.
  std::function<bool(const ObjectId&)> is_local;
  /// Receives work items for non-local objects (the distributed layer turns
  /// them into DerefRequest messages). Required if is_local can be false.
  std::function<void(WorkItem&&)> remote_sink;
  /// Called for local ids missing from the store (dangling pointers). The
  /// item is dropped — partial results beat no results (paper Section 1).
  std::function<void(const ObjectId&)> missing_sink;
};

/// The per-(query, site) execution contract the distributed runtime programs
/// against. Two implementations: QueryExecution (serial, the event-loop
/// thread does everything) and ParallelExecution (engine/parallel_execution
/// .hpp — drains fan out to a shared worker pool, paper Section 6).
///
/// Threading contract: every method is called from the owning site's
/// event-loop thread only. drain() may use worker threads internally but
/// must not return until they are provably idle again, and must invoke the
/// remote/missing sinks on the calling thread only — the distributed layer's
/// termination accounting (weight borrows, message sends) depends on both.
class SiteExecution {
 public:
  virtual ~SiteExecution() = default;

  virtual const Query& query() const = 0;

  /// Originator-side seeding from the query's initial set.
  HF_EVENT_LOOP_ONLY virtual Result<void> seed_initial() = 0;

  /// Seed from this site's local portion of a named set (distributed-set
  /// continuation, paper Section 5). Unknown names are a no-op.
  HF_EVENT_LOOP_ONLY virtual void seed_local_set(const std::string& name) = 0;

  /// Inject one work item (remote dereference arrival, or local routing).
  HF_EVENT_LOOP_ONLY virtual void add_item(WorkItem item) = 0;

  /// Process until the working set is empty and no processing is in flight.
  HF_EVENT_LOOP_ONLY virtual void drain() = 0;

  virtual bool idle() const = 0;
  virtual std::size_t pending() const = 0;

  /// Hand over results accumulated since the last take (dedup state is
  /// retained, so later batches never repeat an id / value).
  HF_EVENT_LOOP_ONLY virtual std::vector<ObjectId> take_result_ids() = 0;
  HF_EVENT_LOOP_ONLY virtual std::vector<Retrieved> take_retrieved() = 0;

  HF_ANY_THREAD virtual EngineStats stats() const = 0;
};

/// What one step() did — the simulator charges costs from this.
enum class StepKind : std::uint8_t {
  kIdle,        // working set empty, nothing done
  kProcessed,   // one object pushed through the filters
  kSuppressed,  // mark table hit, object skipped
  kMissing,     // object id not in the local store
};

struct StepReport {
  StepKind kind = StepKind::kIdle;
  std::uint32_t results_added = 0;
  std::uint32_t values_retrieved = 0;
  std::uint32_t remote_handoffs = 0;
  std::uint32_t local_enqueues = 0;
};

class QueryExecution : public SiteExecution {
 public:
  QueryExecution(const Query& query, const SiteStore& store,
                 ExecutionOptions options = {});

  const Query& query() const override { return query_; }

  /// Originator-side seeding from the query's initial set (explicit ids or
  /// a named set looked up in the local store). Non-local members are routed
  /// through the remote sink like any dereference.
  Result<void> seed_initial() override;

  /// Seed from this site's local portion of a named set (distributed-set
  /// continuation, paper Section 5). Unknown names are a no-op: a site
  /// holding no portion simply contributes nothing.
  void seed_local_set(const std::string& name) override;

  /// Inject one work item (remote dereference arrival, or local routing).
  void add_item(WorkItem item) override;

  /// Process one item from W. Returns kIdle when W is empty.
  StepReport step();

  /// Process until W is empty.
  void drain() override;

  bool idle() const override { return work_.empty(); }
  std::size_t pending() const override { return work_.size(); }

  /// Results accumulated so far (already deduplicated).
  const std::vector<ObjectId>& result_ids() const { return result_ids_; }
  const std::vector<Retrieved>& retrieved() const { return retrieved_; }

  /// Hand over results accumulated since the last take (for batching into a
  /// result message when W drains; the context keeps dedup state so later
  /// batches never repeat an id).
  std::vector<ObjectId> take_result_ids() override;
  std::vector<Retrieved> take_retrieved() override;

  EngineStats stats() const override { return stats_; }

 private:
  void route(WorkItem&& item, StepReport* report);

  const Query query_;  // by value: executions outlive transient messages
  const SiteStore& store_;
  ExecutionOptions options_;
  WorkSet work_;
  MarkTable marks_;
  std::unordered_set<ObjectId> result_members_;
  std::vector<ObjectId> result_ids_;
  std::size_t result_take_cursor_ = 0;
  std::vector<Retrieved> retrieved_;
  std::size_t retrieved_take_cursor_ = 0;
  std::set<std::tuple<std::uint32_t, ObjectId, Value>> retrieved_seen_;
  EngineStats stats_;
  EOutcome scratch_;  // apply_filter out-param, reused across step() calls
};

}  // namespace hyperfile
