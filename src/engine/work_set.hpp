// The working set W (paper Section 3.1).
//
// Footnote 4 of the paper: "The choice of data structure for the working set
// determines the search order for the algorithm, for example a queue gives
// breadth-first search. Work by Sarantos Kapidakis shows that a node-based
// search (such as a breadth-first search) will give the best results in the
// average case." We support both disciplines; bench_discipline measures the
// difference (ablation A1 in DESIGN.md).
#pragma once

#include <deque>

#include "engine/work_item.hpp"

namespace hyperfile {

enum class WorkSetDiscipline {
  kFifo,  // queue: breadth-first traversal (the paper's recommendation)
  kLifo,  // stack: depth-first traversal
};

class WorkSet {
 public:
  explicit WorkSet(WorkSetDiscipline discipline = WorkSetDiscipline::kFifo)
      : discipline_(discipline) {}

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  void push(WorkItem item) { items_.push_back(std::move(item)); }

  WorkItem pop() {
    WorkItem item;
    if (discipline_ == WorkSetDiscipline::kFifo) {
      item = std::move(items_.front());
      items_.pop_front();
    } else {
      item = std::move(items_.back());
      items_.pop_back();
    }
    return item;
  }

  WorkSetDiscipline discipline() const { return discipline_; }

 private:
  WorkSetDiscipline discipline_;
  std::deque<WorkItem> items_;
};

}  // namespace hyperfile
