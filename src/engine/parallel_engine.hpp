// Shared-memory multiprocessor query engine (paper Section 6).
//
// "Our algorithms are also applicable to a shared memory multi-processor
// server. In this case all available processors can share the same general
// query information, mark table, and working set. ... Termination requires
// that the set be empty, and that no processors are still working on the
// query. ... it is not necessary to have a strict locking mechanism to
// prevent two processors from working on the same document. Duplicate
// processing may create some duplicate answers, but not incorrect ones (due
// to the set-based nature of the result)."
//
// This implementation shares the working set, mark table and result set
// under one mutex, but deliberately performs object processing *outside*
// the lock and applies an item's marks only after its pass completes —
// so two workers may indeed process the same object concurrently, exactly
// the benign race the paper describes. The result set deduplicates, so the
// outcome equals the serial engine's (property-tested).
#pragma once

#include <cstddef>

#include "engine/query_result.hpp"
#include "store/site_store.hpp"

namespace hyperfile {

class ParallelEngine {
 public:
  /// `workers` == 0 selects std::thread::hardware_concurrency().
  explicit ParallelEngine(const SiteStore& store, std::size_t workers = 0);

  Result<QueryResult> run(const Query& query) const;

  std::size_t workers() const { return workers_; }

 private:
  const SiteStore& store_;
  std::size_t workers_;
};

}  // namespace hyperfile
