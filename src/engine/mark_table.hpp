// The mark table (paper Section 3.1).
//
// Cycles in the pointer graph would make transitive-closure iterators loop
// forever, so processed objects are marked. The important subtlety the paper
// calls out: an object may legitimately need processing *more than once* if
// it is reached at different points of the query (it failed filter F1 but is
// later dereferenced into F3). The table therefore records, per object, the
// *set of filter indices* at which processing has started or passed — the
// pop-time guard asks "has this object already been processed from (or
// through) filter O.start?".
//
// One mark table exists per (query, site): marking is purely local, which is
// what lets every site run the identical algorithm with no shared state
// (paper Section 3.2; duplicate remote requests are suppressed on arrival).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "model/object_id.hpp"

namespace hyperfile {

class MarkTable {
 public:
  /// `filter_count` is n, the number of filters. Valid indices are 1..n+1:
  /// an object dereferenced by the very last filter enters at start n+1
  /// ("past the end" — it joins the result with no further filtering).
  explicit MarkTable(std::uint32_t filter_count)
      : words_per_entry_((filter_count + 2 + 63) / 64) {}

  bool test(const ObjectId& id, std::uint32_t filter_index) const {
    auto it = marks_.find(id);
    if (it == marks_.end()) return false;
    return (it->second[filter_index / 64] >> (filter_index % 64)) & 1;
  }

  void set(const ObjectId& id, std::uint32_t filter_index) {
    auto [it, inserted] = marks_.try_emplace(id);
    if (inserted) it->second.assign(words_per_entry_, 0);
    it->second[filter_index / 64] |= std::uint64_t{1} << (filter_index % 64);
  }

  /// Any mark at all for this object (used by the naive-marking ablation).
  bool test_any(const ObjectId& id) const { return marks_.count(id) != 0; }

  std::size_t marked_objects() const { return marks_.size(); }
  void clear() { marks_.clear(); }

 private:
  std::size_t words_per_entry_;
  std::unordered_map<ObjectId, std::vector<std::uint64_t>> marks_;
};

/// Lock-free mark table for the parallel drain (DESIGN.md §14): the same
/// (object, filter-index) contract as MarkTable, backed by the sanctioned
/// AtomicMarkMap in common/sync.hpp. set/test are called twice per filter
/// application by every worker concurrently; relaxed mark atomics are sound
/// because a missed concurrent mark only causes benign duplicate processing
/// (paper Section 6), never a wrong answer.
class AtomicMarkTable {
 public:
  /// `filter_count` is n; valid indices are 1..n+1, exactly as MarkTable.
  explicit AtomicMarkTable(std::uint32_t filter_count,
                           std::size_t expected_objects = 1024)
      : map_(filter_count + 2, expected_objects) {}

  bool test(const ObjectId& id, std::uint32_t filter_index) const {
    return map_.test(pack(id), filter_index);
  }

  void set(const ObjectId& id, std::uint32_t filter_index) {
    map_.set(pack(id), filter_index);
  }

  /// Set and report the previous state in one atomic op.
  bool test_and_set(const ObjectId& id, std::uint32_t filter_index) {
    return map_.test_and_set(pack(id), filter_index);
  }

  /// Any mark at all for this object (naive-marking ablation).
  bool test_any(const ObjectId& id) const { return map_.test_any(pack(id)); }

  std::size_t marked_objects() const { return map_.key_count(); }

 private:
  /// Identity is (birth_site, seq) — presumed_site is routing state and must
  /// not split marks. Packing matches ObjectIdHash: sites fit in 16 bits and
  /// local sequences in 48 for any deployment this codebase targets (the
  /// stores allocate seq densely from 1).
  static std::uint64_t pack(const ObjectId& id) {
    return (static_cast<std::uint64_t>(id.birth_site) << 48) ^ id.seq;
  }

  AtomicMarkMap map_;
};

}  // namespace hyperfile
