#include "engine/local_engine.hpp"

namespace hyperfile {

Result<QueryResult> LocalEngine::run_readonly(const Query& query) const {
  if (auto v = query.validate(); !v.ok()) return v.error();
  ExecutionOptions options;
  options.discipline = discipline_;
  QueryExecution exec(query, store_, std::move(options));
  if (auto s = exec.seed_initial(); !s.ok()) return s.error();
  exec.drain();

  QueryResult result;
  result.ids = exec.result_ids();
  result.values = exec.retrieved();
  result.slot_names = query.retrieve_slots();
  result.count_only = query.count_only();
  result.total_count = result.ids.size();
  result.stats = exec.stats();
  return result;
}

Result<QueryResult> LocalEngine::run(const Query& query) {
  auto result = run_readonly(query);
  if (!result.ok()) return result;
  if (!query.result_set_name().empty()) {
    store_.create_set(query.result_set_name(), result.value().ids);
  }
  return result;
}

}  // namespace hyperfile
