#include "engine/efunction.hpp"

#include <cassert>

namespace hyperfile {
namespace {

/// Field-level pattern match, resolving $X against the current bindings.
bool match_field(const Pattern& p, const Value& v, const MatchBindings& mvars) {
  if (p.uses()) return mvars.contains(p.var(), v);
  return p.matches_basic(v);
}

struct PendingBind {
  const std::string* var;
  const Value* value;
};

EOutcome apply_select(const SelectFilter& f, WorkItem& item, const Object* obj,
                      EStats* stats) {
  EOutcome out;
  if (obj == nullptr) return out;  // missing data: object cannot pass
  bool any_match = false;
  for (const auto& t : obj->tuples()) {
    if (stats != nullptr) ++stats->tuples_scanned;
    const Value type_value = Value::string(t.type);
    const Value key_value = Value::string(t.key);
    if (!match_field(f.type_pattern, type_value, item.mvars)) continue;
    if (!match_field(f.key_pattern, key_value, item.mvars)) continue;
    if (!match_field(f.data_pattern, t.data, item.mvars)) continue;

    any_match = true;
    // The tuple matched as a whole: apply bindings and retrievals now, so
    // they are visible to later tuples in this same filter (the paper's
    // pseudocode mutates O.mvars tuple-by-tuple).
    struct FieldRef {
      const Pattern* p;
      const Value* v;
    };
    const FieldRef fields[3] = {{&f.type_pattern, &type_value},
                                {&f.key_pattern, &key_value},
                                {&f.data_pattern, &t.data}};
    for (const auto& [p, v] : fields) {
      if (p->binds()) item.mvars.bind(p->var(), *v);
      if (p->retrieves()) out.retrieved.push_back({p->slot(), obj->id(), *v});
    }
  }
  if (any_match) {
    ++item.next;
    out.alive = true;
  }
  return out;
}

EOutcome apply_deref(const Query& q, const DerefFilter& f, WorkItem& item,
                     EStats* stats) {
  EOutcome out;
  if (const auto* values = item.mvars.lookup(f.var)) {
    for (const Value& v : *values) {
      if (!v.is_pointer()) continue;  // "if x is an object id"
      WorkItem child;
      child.id = v.as_pointer();
      child.start = item.next + 1;
      child.next = item.next + 1;
      child.iter_stack = item.iter_stack;  // copy the stack...
      if (child.iter_stack.empty()) child.iter_stack.push_back(1);
      ++child.iter_stack.back();  // ...incrementing only the top entry
      normalize_iter_stack(q, child);
      out.derefs.push_back(std::move(child));
      if (stats != nullptr) ++stats->derefs_followed;
    }
  }
  if (f.keep_source) {
    ++item.next;
    out.alive = true;
  }
  return out;
}

EOutcome apply_iterate(const Query& q, const IterateFilter& f, WorkItem& item) {
  EOutcome out;
  out.alive = true;
  const bool through_body = item.start <= f.body_start;
  const bool chain_long_enough = !f.unbounded() && item.iter_top() >= f.count;
  if (through_body || chain_long_enough) {
    ++item.next;  // fall out of the loop
  } else {
    item.start = f.body_start;  // "so that O will pass next time"
    item.next = f.body_start;
  }
  normalize_iter_stack(q, item);
  return out;
}

}  // namespace

void normalize_iter_stack(const Query& q, WorkItem& item) {
  const std::uint32_t depth =
      item.next <= q.size() ? q.iterator_depth(item.next) : 0;
  const std::size_t want = static_cast<std::size_t>(depth) + 1;
  while (item.iter_stack.size() > want) item.iter_stack.pop_back();
  while (item.iter_stack.size() < want) item.iter_stack.push_back(1);
}

EOutcome apply_filter(const Query& q, WorkItem& item, const Object* obj,
                      EStats* stats) {
  assert(item.next >= 1 && item.next <= q.size());
  const Filter& f = q.filter(item.next);
  EOutcome out;
  if (const auto* s = std::get_if<SelectFilter>(&f)) {
    out = apply_select(*s, item, obj, stats);
    if (out.alive) normalize_iter_stack(q, item);
  } else if (const auto* d = std::get_if<DerefFilter>(&f)) {
    out = apply_deref(q, *d, item, stats);
    if (out.alive) normalize_iter_stack(q, item);
  } else {
    out = apply_iterate(q, std::get<IterateFilter>(f), item);
  }
  return out;
}

}  // namespace hyperfile
