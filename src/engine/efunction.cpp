#include "engine/efunction.hpp"

#include <cassert>
#include <string_view>

namespace hyperfile {
namespace {

/// Field-level pattern match, resolving $X against the current bindings.
bool match_field(const Pattern& p, const Value& v, const MatchBindings& mvars) {
  if (p.uses()) return mvars.contains(p.var(), v);
  return p.matches_basic(v);
}

/// Same, for the tuple's type/key name fields, which are plain strings. The
/// allocation-free form: no Value is materialized unless the pattern is $X
/// (rare — needs Value equality against the binding table).
bool match_name_field(const Pattern& p, std::string_view s,
                      const MatchBindings& mvars) {
  if (p.uses()) return mvars.contains(p.var(), Value::string(std::string(s)));
  return p.matches_basic(s);
}

/// Post-match capture for one field: ?X bindings and -> retrievals. Only
/// called for patterns that actually capture, so the caller can defer Value
/// materialization of name fields to this point.
void capture_field(const Pattern& p, const ObjectId& source, const Value& v,
                   WorkItem& item, EOutcome& out) {
  if (p.binds()) item.mvars.bind(p.var(), v);
  if (p.retrieves()) out.retrieved.push_back({p.slot(), source, v});
}

void apply_select(const SelectFilter& f, WorkItem& item, const Object* obj,
                  EOutcome& out, EStats* stats) {
  if (obj == nullptr) return;  // missing data: object cannot pass
  const bool type_captures = f.type_pattern.binds() || f.type_pattern.retrieves();
  const bool key_captures = f.key_pattern.binds() || f.key_pattern.retrieves();
  const bool data_captures = f.data_pattern.binds() || f.data_pattern.retrieves();
  bool any_match = false;
  for (const auto& t : obj->tuples()) {
    if (stats != nullptr) ++stats->tuples_scanned;
    if (!match_name_field(f.type_pattern, t.type, item.mvars)) continue;
    if (!match_name_field(f.key_pattern, t.key, item.mvars)) continue;
    if (!match_field(f.data_pattern, t.data, item.mvars)) continue;

    any_match = true;
    // The tuple matched as a whole: apply bindings and retrievals now, so
    // they are visible to later tuples in this same filter (the paper's
    // pseudocode mutates O.mvars tuple-by-tuple). Values for the name
    // fields are materialized only here, never in the scan above.
    if (type_captures) {
      capture_field(f.type_pattern, obj->id(), Value::string(t.type), item, out);
    }
    if (key_captures) {
      capture_field(f.key_pattern, obj->id(), Value::string(t.key), item, out);
    }
    if (data_captures) {
      capture_field(f.data_pattern, obj->id(), t.data, item, out);
    }
  }
  if (any_match) {
    ++item.next;
    out.alive = true;
  }
}

void apply_deref(const Query& q, const DerefFilter& f, WorkItem& item,
                 EOutcome& out, EStats* stats) {
  if (const auto* values = item.mvars.lookup(f.var)) {
    for (const Value& v : *values) {
      if (!v.is_pointer()) continue;  // "if x is an object id"
      WorkItem child;
      child.id = v.as_pointer();
      child.start = item.next + 1;
      child.next = item.next + 1;
      child.iter_stack = item.iter_stack;  // copy the stack...
      if (child.iter_stack.empty()) child.iter_stack.push_back(1);
      ++child.iter_stack.back();  // ...incrementing only the top entry
      normalize_iter_stack(q, child);
      out.derefs.push_back(std::move(child));
      if (stats != nullptr) ++stats->derefs_followed;
    }
  }
  if (f.keep_source) {
    ++item.next;
    out.alive = true;
  }
}

void apply_iterate(const Query& q, const IterateFilter& f, WorkItem& item,
                   EOutcome& out) {
  out.alive = true;
  const bool through_body = item.start <= f.body_start;
  const bool chain_long_enough = !f.unbounded() && item.iter_top() >= f.count;
  if (through_body || chain_long_enough) {
    ++item.next;  // fall out of the loop
  } else {
    item.start = f.body_start;  // "so that O will pass next time"
    item.next = f.body_start;
  }
  normalize_iter_stack(q, item);
}

}  // namespace

void normalize_iter_stack(const Query& q, WorkItem& item) {
  const std::uint32_t depth =
      item.next <= q.size() ? q.iterator_depth(item.next) : 0;
  const std::size_t want = static_cast<std::size_t>(depth) + 1;
  while (item.iter_stack.size() > want) item.iter_stack.pop_back();
  while (item.iter_stack.size() < want) item.iter_stack.push_back(1);
}

void apply_filter(const Query& q, WorkItem& item, const Object* obj,
                  EOutcome& out, EStats* stats) {
  assert(item.next >= 1 && item.next <= q.size());
  out.clear();
  const Filter& f = q.filter(item.next);
  if (const auto* s = std::get_if<SelectFilter>(&f)) {
    apply_select(*s, item, obj, out, stats);
    if (out.alive) normalize_iter_stack(q, item);
  } else if (const auto* d = std::get_if<DerefFilter>(&f)) {
    apply_deref(q, *d, item, out, stats);
    if (out.alive) normalize_iter_stack(q, item);
  } else {
    apply_iterate(q, std::get<IterateFilter>(f), item, out);
  }
}

}  // namespace hyperfile
