#include "engine/parallel_engine.hpp"

#include <array>
#include <deque>
#include <thread>

#include "common/sync.hpp"
#include "engine/mark_table.hpp"

namespace hyperfile {
namespace {

/// Items a worker claims per queue-lock acquisition. Per-object filter work
/// is a few microseconds, so single-item handoff would be mutex-bound;
/// batching amortizes the lock while keeping load balance fine-grained.
constexpr std::size_t kClaimBatch = 64;

struct Shared {
  explicit Shared(const Query& q) : marks(q.size()) {}

  bool marked(const ObjectId& id, std::uint32_t index) const {
    return marks.test(id, index);
  }

  void set_mark(const ObjectId& id, std::uint32_t index) {
    marks.set(id, index);
  }

  // Work queue + termination accounting.
  Mutex mu_q;
  CondVar cv;
  std::deque<WorkItem> work HF_GUARDED_BY(mu_q);
  std::size_t active HF_GUARDED_BY(mu_q) = 0;
  bool done HF_GUARDED_BY(mu_q) = false;

  /// Lock-free marks (common/sync.hpp AtomicMarkMap): the paper's
  /// observation that "it is not necessary to have a strict locking
  /// mechanism" licenses the relaxed window between the pop-time guard and
  /// the post-processing set — two workers may process the same object
  /// concurrently, producing only duplicate (deduplicated) answers.
  AtomicMarkTable marks;

  // Result set.
  Mutex mu_r;
  std::unordered_set<ObjectId> result_members HF_GUARDED_BY(mu_r);
  std::vector<ObjectId> result_ids HF_GUARDED_BY(mu_r);
  std::set<std::tuple<std::uint32_t, ObjectId, Value>> retrieved_seen
      HF_GUARDED_BY(mu_r);
  std::vector<Retrieved> retrieved HF_GUARDED_BY(mu_r);

  // Stats merged from workers at the end.
  Mutex mu_s;
  EngineStats stats HF_GUARDED_BY(mu_s);
};

void worker_loop(const Query& query, const SiteStore& store, Shared& sh) {
  const std::uint32_t n = query.size();
  EngineStats local;
  std::vector<WorkItem> batch;
  batch.reserve(kClaimBatch);
  // Batch-lifetime scratch, reused so the hot loop stays allocation-free.
  std::vector<ObjectId> survivors;
  std::vector<WorkItem> children;
  std::vector<Retrieved> captured;
  EOutcome out;

  for (;;) {
    batch.clear();
    {
      MutexLock lock(sh.mu_q);
      while (sh.work.empty() && !sh.done) sh.cv.wait(lock);
      if (sh.done && sh.work.empty()) break;
      while (!sh.work.empty() && batch.size() < kClaimBatch) {
        batch.push_back(std::move(sh.work.front()));
        sh.work.pop_front();
      }
      local.pops += batch.size();
      ++sh.active;
    }

    // --- outside the queue lock ---
    survivors.clear();
    children.clear();
    captured.clear();
    EStats estats;
    for (WorkItem& item : batch) {
      // Pop-time guard (sharded lock; benign race with the post-set below).
      if (sh.marked(item.id, item.start)) {
        ++local.suppressed;
        continue;
      }
      const Object* obj = store.get(item.id);
      if (obj == nullptr) {
        ++local.missing;
        continue;
      }
      ++local.processed;
      bool alive = true;
      while (alive && item.next <= n) {
        sh.set_mark(item.id, item.next);
        ++local.filters_applied;
        apply_filter(query, item, obj, out, &estats);
        for (auto& c : out.derefs) children.push_back(std::move(c));
        for (auto& r : out.retrieved) captured.push_back(std::move(r));
        alive = out.alive;
      }
      if (alive) {
        sh.set_mark(item.id, n + 1);
        survivors.push_back(item.id);
      }
    }
    local.tuples_scanned += estats.tuples_scanned;
    local.derefs_followed += estats.derefs_followed;

    if (!survivors.empty() || !captured.empty()) {
      MutexLock lock(sh.mu_r);
      for (const ObjectId& id : survivors) {
        if (sh.result_members.insert(id).second) {
          sh.result_ids.push_back(id);
          ++local.results;
        } else {
          ++local.duplicate_results;
        }
      }
      for (auto& r : captured) {
        if (sh.retrieved_seen.emplace(r.slot, r.source, r.value).second) {
          sh.retrieved.push_back(std::move(r));
          ++local.retrieved_values;
        }
      }
    }

    {
      MutexLock lock(sh.mu_q);
      for (auto& c : children) sh.work.push_back(std::move(c));
      --sh.active;
      if (sh.work.empty() && sh.active == 0) {
        sh.done = true;
        sh.cv.notify_all();
      } else if (!sh.work.empty()) {
        sh.cv.notify_all();
      }
    }
  }

  MutexLock lock(sh.mu_s);
  sh.stats += local;
}

}  // namespace

ParallelEngine::ParallelEngine(const SiteStore& store, std::size_t workers)
    : store_(store),
      workers_(workers != 0 ? workers
                            : std::max(1u, std::thread::hardware_concurrency())) {}

Result<QueryResult> ParallelEngine::run(const Query& query) const {
  if (auto v = query.validate(); !v.ok()) return v.error();

  Shared sh(query);

  // Seed (serially) from the initial set.
  std::vector<ObjectId> ids = query.initial_ids();
  if (!query.initial_set_name().empty()) {
    auto members = store_.set_members(query.initial_set_name());
    if (!members.ok()) return members.error();
    const auto& m = members.value();
    ids.insert(ids.end(), m.begin(), m.end());
  }
  // Dedup at seed time: duplicate ids in the initial set (or a named set
  // whose members repeat) must not become duplicate work items — the
  // pop-time mark guard cannot suppress them once two workers hold both
  // copies concurrently. The locks here and below are uncontended (no
  // worker threads exist yet / all have joined); they are taken so the
  // thread-safety analysis can verify the guarded accesses.
  {
    MutexLock lock(sh.mu_q);
    std::unordered_set<ObjectId> seeded;
    for (const ObjectId& id : ids) {
      if (!seeded.insert(id).second) continue;
      WorkItem item = WorkItem::initial(id);
      normalize_iter_stack(query, item);
      sh.work.push_back(std::move(item));
    }
    if (sh.work.empty()) sh.done = true;
  }

  std::vector<std::thread> threads;
  threads.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    threads.emplace_back([&] { worker_loop(query, store_, sh); });
  }
  for (auto& t : threads) t.join();

  QueryResult result;
  {
    MutexLock lock(sh.mu_r);
    result.ids = std::move(sh.result_ids);
    result.values = std::move(sh.retrieved);
  }
  result.slot_names = query.retrieve_slots();
  result.count_only = query.count_only();
  result.total_count = result.ids.size();
  {
    MutexLock lock(sh.mu_s);
    result.stats = sh.stats;
  }
  return result;
}

}  // namespace hyperfile
