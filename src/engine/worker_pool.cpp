#include "engine/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/metrics.hpp"

namespace hyperfile {

WorkerPool::WorkerPool(std::size_t workers) {
  const std::size_t n = std::max<std::size_t>(1, workers);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(std::size_t)>& fn) {
  static Counter& passes = metrics().counter("engine.pool.passes");
  static Histogram& pass_us = metrics().histogram("engine.pool.pass_us");
  passes.inc();
  const auto t0 = std::chrono::steady_clock::now();
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    task_ = &fn;
    remaining_ = threads_.size();
    first_error_ = nullptr;
    ++generation_;
    wake_cv_.notify_all();
    while (remaining_ != 0) done_cv_.wait(lock);
    task_ = nullptr;
    error = std::exchange(first_error_, nullptr);
  }
  pass_us.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  if (error) std::rethrow_exception(error);
}

void WorkerPool::worker_loop(std::size_t index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen_generation) wake_cv_.wait(lock);
      if (shutdown_) return;
      seen_generation = generation_;
      task = task_;
    }
    try {
      (*task)(index);
    } catch (...) {
      MutexLock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      MutexLock lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace hyperfile
