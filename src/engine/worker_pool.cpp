#include "engine/worker_pool.hpp"

#include <algorithm>

namespace hyperfile {

WorkerPool::WorkerPool(std::size_t workers) {
  const std::size_t n = std::max<std::size_t>(1, workers);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void()>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  task_ = &fn;
  remaining_ = threads_.size();
  ++generation_;
  wake_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  task_ = nullptr;
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void()>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      task = task_;
    }
    (*task)();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace hyperfile
