// ParallelExecution: the shared-memory multiprocessor algorithm (paper
// Section 6) generalized to the full distributed contract of SiteExecution,
// so one site of a deployment can drain its working set on every core.
//
// "Our algorithms are also applicable to a shared memory multi-processor
// server. In this case all available processors can share the same general
// query information, mark table, and working set. ... it is not necessary to
// have a strict locking mechanism to prevent two processors from working on
// the same document. Duplicate processing may create some duplicate answers,
// but not incorrect ones."
//
// This is the scalable drain (DESIGN.md §14); the pre-overhaul engine it
// replaced survives as engine/legacy_drain.hpp for old-vs-new measurement.
// What makes it scale:
//   * Lock-free marks — one AtomicMarkTable (common/sync.hpp) instead of
//     mutex-guarded shards; marked/set_mark are a relaxed atomic load /
//     fetch_or, licensed by the paper's benign-duplicate argument above.
//   * Per-worker work queues with stealing — each worker owns a deque; it
//     pushes dereferenced children to its own queue and claims batches from
//     it locklessly w.r.t. other queues, stealing the front half of a
//     victim's queue only when its own runs dry. No thundering herd: a
//     worker that pushes work wakes at most one parked thief (notify_one),
//     and only when somebody is actually parked.
//   * Allocation-free steady state — per-worker scratch (EOutcome, batch,
//     child/survivor buffers) reused across batches; apply_filter fills an
//     out-param instead of returning fresh vectors.
//
// Division of labour (unchanged from the old engine):
//   * The site event-loop thread owns messaging, store writes, and
//     termination accounting. It calls seed_*/add_item/drain/take_* exactly
//     as it would on the serial QueryExecution; seeds are dealt round-robin
//     across the worker queues.
//   * drain() fans object processing out to a long-lived WorkerPool shared
//     by every query context of the site; workers only *read* the store.
//   * Non-local dereferences and missing ids discovered by workers are
//     buffered, and the remote/missing sinks run on the event-loop thread
//     after the pool has joined — so weight is borrowed and messages are
//     sent only while workers are provably idle, keeping both the
//     weighted-message and Dijkstra-Scholten termination arguments intact.
//
// Pass termination: a worker parks only after finding its own queue and
// every victim's queue empty; the pass ends when all workers are parked.
// Only a queue's owner ever pushes to it, so "owner parked" means "queue
// permanently empty" — all parked therefore implies no work anywhere.
//
// With one worker the engine is serial-observable: a single queue, owner
// pops front (kFifo) or back (kLifo), children append in dereference order —
// the same visit order as the serial WorkSet.
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "common/sync.hpp"
#include "engine/execution.hpp"
#include "engine/mark_table.hpp"
#include "engine/worker_pool.hpp"

namespace hyperfile {

class ParallelExecution : public SiteExecution {
 public:
  /// `pool` must outlive this execution; it may be shared with other
  /// executions (drains never overlap — the event loop serializes them).
  ParallelExecution(const Query& query, const SiteStore& store,
                    WorkerPool& pool, ExecutionOptions options = {});

  const Query& query() const override { return query_; }

  HF_EVENT_LOOP_ONLY Result<void> seed_initial() override;
  HF_EVENT_LOOP_ONLY void seed_local_set(const std::string& name) override;
  HF_EVENT_LOOP_ONLY void add_item(WorkItem item) override;

  HF_EVENT_LOOP_ONLY void drain() override;

  HF_ANY_THREAD bool idle() const override;
  HF_ANY_THREAD std::size_t pending() const override;

  HF_EVENT_LOOP_ONLY std::vector<ObjectId> take_result_ids() override;
  HF_EVENT_LOOP_ONLY std::vector<Retrieved> take_retrieved() override;

  HF_ANY_THREAD EngineStats stats() const override;

 private:
  /// One worker's deque. Owner pushes/claims at the back half of the
  /// protocol, thieves take from the front; the mutex is per-queue, so the
  /// only contention is an actual steal.
  struct WorkerQueue {
    mutable Mutex mu;
    std::deque<WorkItem> dq HF_GUARDED_BY(mu);
  };

  /// Per-worker scratch, allocated once and reused every batch of every
  /// pass — the drain's steady state performs no heap allocation beyond
  /// what WorkItems themselves carry.
  struct WorkerScratch {
    std::vector<WorkItem> batch;
    std::vector<WorkItem> local_children;
    std::vector<WorkItem> remote_children;
    std::vector<ObjectId> missing_here;
    std::vector<ObjectId> survivors;
    std::vector<Retrieved> captured;
    EOutcome out;
  };

  /// Seed-side routing on the calling (event-loop) thread: local ids are
  /// dealt round-robin across worker queues, non-local ones go straight to
  /// the remote sink. Seeds are deduplicated — a duplicate id in the
  /// initial set must not become two work items.
  HF_EVENT_LOOP_ONLY void route_seed(WorkItem&& item,
                                     std::unordered_set<ObjectId>& seen);
  /// Push one item onto a worker queue from the event-loop thread (between
  /// passes: uncontended) and keep the depth gauges fresh.
  HF_EVENT_LOOP_ONLY void push_from_loop(WorkItem&& item);

  /// Claim up to kClaimBatch items from worker `w`'s own queue, honoring
  /// the discipline order. Returns the number claimed.
  HF_WORKER_ONLY std::size_t claim_own(std::size_t w,
                                       std::vector<WorkItem>& batch);
  /// Scan the other queues and steal the front half of the first non-empty
  /// one. Returns the number stolen (into `batch`).
  HF_WORKER_ONLY std::size_t steal(std::size_t w, std::vector<WorkItem>& batch,
                    EngineStats& local);

  /// One worker's share of a drain pass: claim/steal batches until every
  /// queue is empty and all workers are parked.
  HF_WORKER_ONLY void worker_pass(std::size_t w);

  const Query query_;  // by value: executions outlive transient messages
  const SiteStore& store_;
  ExecutionOptions options_;
  WorkerPool& pool_;

  /// One queue per pool worker, created once in the constructor.
  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // ctor-only
  /// Per-worker scratch buffers, index-aligned with queues_. Touched only
  /// by the owning worker during a pass.
  std::vector<std::unique_ptr<WorkerScratch>> scratch_;  // ctor-only

  // Pass-termination accounting. Touched once per batch (pushers checking
  // for parked thieves) and when a worker runs dry — never per item.
  mutable Mutex mu_pass_;
  std::size_t idle_workers_ HF_GUARDED_BY(mu_pass_) = 0;
  bool pass_done_ HF_GUARDED_BY(mu_pass_) = false;
  std::uint64_t work_epoch_ HF_GUARDED_BY(mu_pass_) = 0;
  CondVar pass_cv_;

  /// Lock-free mark table (common/sync.hpp AtomicMarkMap): relaxed
  /// fetch_or / loads, the paper's benign-duplicate window.
  AtomicMarkTable amarks_;

  // Event-loop-confined seeding state (workers are idle whenever these are
  // touched): round-robin cursor, items pushed since the last drain, and
  // the high-water mark folded into stats() on demand.
  std::size_t seed_cursor_ HF_EVENT_LOOP_ONLY = 0;
  std::size_t loop_pending_ HF_EVENT_LOOP_ONLY = 0;
  std::uint64_t seed_peak_ HF_EVENT_LOOP_ONLY = 0;

  // Result set + retrieval dedup, with take cursors for incremental
  // flushing. Locked once per claimed batch, never per item.
  mutable Mutex mu_results_;
  std::unordered_set<ObjectId> result_members_ HF_GUARDED_BY(mu_results_);
  std::vector<ObjectId> result_ids_ HF_GUARDED_BY(mu_results_);
  std::size_t result_take_cursor_ HF_GUARDED_BY(mu_results_) = 0;
  std::set<std::tuple<std::uint32_t, ObjectId, Value>> retrieved_seen_
      HF_GUARDED_BY(mu_results_);
  std::vector<Retrieved> retrieved_ HF_GUARDED_BY(mu_results_);
  std::size_t retrieved_take_cursor_ HF_GUARDED_BY(mu_results_) = 0;

  // Side-effects workers may not perform themselves: buffered during the
  // pass, flushed by drain() on the event-loop thread after the join.
  Mutex mu_side_;
  std::vector<WorkItem> remote_buffer_ HF_GUARDED_BY(mu_side_);
  std::vector<ObjectId> missing_buffer_ HF_GUARDED_BY(mu_side_);

  // Stats: workers merge their local counters once at the end of each pass;
  // reads happen on the event-loop thread between drains.
  mutable Mutex mu_stats_;
  EngineStats stats_ HF_GUARDED_BY(mu_stats_);
};

}  // namespace hyperfile
