// ParallelExecution: the shared-memory multiprocessor algorithm (paper
// Section 6) generalized to the full distributed contract of SiteExecution,
// so one site of a deployment can drain its working set on every core.
//
// "Our algorithms are also applicable to a shared memory multi-processor
// server. In this case all available processors can share the same general
// query information, mark table, and working set. ... it is not necessary to
// have a strict locking mechanism to prevent two processors from working on
// the same document. Duplicate processing may create some duplicate answers,
// but not incorrect ones."
//
// Division of labour (see DESIGN.md "Parallel site drain"):
//   * The site event-loop thread owns messaging, store writes, and
//     termination accounting. It calls seed_*/add_item/drain/take_* exactly
//     as it would on the serial QueryExecution.
//   * drain() fans object processing out to a long-lived WorkerPool shared
//     by every query context of the site. Workers share the working set,
//     a sharded mark table, and the deduplicating result set; they only
//     *read* the store.
//   * Non-local dereferences and missing ids discovered by workers are
//     buffered, and the remote/missing sinks run on the event-loop thread
//     after the pool has joined — so weight is borrowed and messages are
//     sent only while workers are provably idle, keeping both the
//     weighted-message and Dijkstra-Scholten termination arguments intact
//     (quiescence == working set empty, established at the join).
//
// Duplicate processing between the pop-time mark guard and the post-set is
// the paper's benign race: the result set deduplicates, remote duplicates
// are suppressed by the destination's own mark table on arrival.
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "common/sync.hpp"
#include "engine/execution.hpp"
#include "engine/worker_pool.hpp"

namespace hyperfile {

class ParallelExecution : public SiteExecution {
 public:
  /// `pool` must outlive this execution; it may be shared with other
  /// executions (drains never overlap — the event loop serializes them).
  ParallelExecution(const Query& query, const SiteStore& store,
                    WorkerPool& pool, ExecutionOptions options = {});

  const Query& query() const override { return query_; }

  Result<void> seed_initial() override;
  void seed_local_set(const std::string& name) override;
  void add_item(WorkItem item) override;

  void drain() override;

  bool idle() const override;
  std::size_t pending() const override;

  std::vector<ObjectId> take_result_ids() override;
  std::vector<Retrieved> take_retrieved() override;

  EngineStats stats() const override;

 private:
  struct MarkShard {
    Mutex mu;
    MarkTable table HF_GUARDED_BY(mu);
    explicit MarkShard(std::uint32_t filters) : table(filters) {}
  };

  bool marked(const ObjectId& id, std::uint32_t index);
  void set_mark(const ObjectId& id, std::uint32_t index);

  /// Seed-side routing on the calling (event-loop) thread: local ids enter
  /// W, non-local ones go straight to the remote sink. Seeds are
  /// deduplicated — a duplicate id in the initial set must not become two
  /// work items.
  void route_seed(WorkItem&& item, std::unordered_set<ObjectId>& seen);

  /// One worker's share of a drain pass: claim batches until the pass is
  /// globally done (W empty and no worker mid-batch).
  void worker_pass();

  const Query query_;  // by value: executions outlive transient messages
  const SiteStore& store_;
  ExecutionOptions options_;
  WorkerPool& pool_;

  // Working set + pass-termination accounting. Leaf lock: nothing else is
  // acquired while it is held (stats updates that once nested under it now
  // read the queue depth first and lock mu_stats_ after release).
  mutable Mutex mu_work_;
  std::deque<WorkItem> work_ HF_GUARDED_BY(mu_work_);
  std::size_t active_workers_ HF_GUARDED_BY(mu_work_) = 0;
  bool pass_done_ HF_GUARDED_BY(mu_work_) = false;
  CondVar work_cv_;

  // Sharded mark table: per-shard locks, benign window between the
  // pop-time test and the in-processing set.
  std::vector<std::unique_ptr<MarkShard>> shards_;  // ctor-only

  // Result set + retrieval dedup, with take cursors for incremental
  // flushing.
  mutable Mutex mu_results_;
  std::unordered_set<ObjectId> result_members_ HF_GUARDED_BY(mu_results_);
  std::vector<ObjectId> result_ids_ HF_GUARDED_BY(mu_results_);
  std::size_t result_take_cursor_ HF_GUARDED_BY(mu_results_) = 0;
  std::set<std::tuple<std::uint32_t, ObjectId, Value>> retrieved_seen_
      HF_GUARDED_BY(mu_results_);
  std::vector<Retrieved> retrieved_ HF_GUARDED_BY(mu_results_);
  std::size_t retrieved_take_cursor_ HF_GUARDED_BY(mu_results_) = 0;

  // Side-effects workers may not perform themselves: buffered during the
  // pass, flushed by drain() on the event-loop thread after the join.
  Mutex mu_side_;
  std::vector<WorkItem> remote_buffer_ HF_GUARDED_BY(mu_side_);
  std::vector<ObjectId> missing_buffer_ HF_GUARDED_BY(mu_side_);

  // Stats: workers merge their local counters at the end of each pass;
  // reads happen on the event-loop thread between drains.
  mutable Mutex mu_stats_;
  EngineStats stats_ HF_GUARDED_BY(mu_stats_);
};

}  // namespace hyperfile
