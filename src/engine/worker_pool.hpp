// A pool of long-lived worker threads for parallel site drains (paper
// Section 6 applied inside the distributed runtime).
//
// One pool exists per site, created once and shared across every query
// context the site processes — spawning threads per drain would dwarf the
// few-microsecond object costs the pool is meant to parallelize. The pool
// runs one "pass" at a time: run() executes the given function on every
// worker concurrently and returns only after all of them finished, which is
// the quiescence point the distributed termination algorithms need (no
// worker can hold or produce work once run() has returned).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace hyperfile {

class WorkerPool {
 public:
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Run `fn(worker_index)` on every worker; blocks until all of them
  /// returned. Indices are 0..size()-1, one per worker, stable across
  /// passes — they let a drain keep per-worker state (steal queues, scratch
  /// buffers) without thread-local lookups. `fn` must be safe to execute
  /// concurrently with itself. Only one run() may be in flight at a time
  /// (the site event loop is the sole caller).
  ///
  /// If `fn` throws on any worker, the pass still completes on every worker
  /// (the pool stays usable) and the first captured exception is rethrown
  /// here, on the calling thread.
  HF_BLOCKING void run(const std::function<void(std::size_t)>& fn);

 private:
  HF_WORKER_ONLY void worker_loop(std::size_t index);

  Mutex mu_;
  CondVar wake_cv_;   // workers wait for a new pass
  CondVar done_cv_;   // run() waits for pass completion
  const std::function<void(std::size_t)>* task_ HF_GUARDED_BY(mu_) = nullptr;
  std::uint64_t generation_ HF_GUARDED_BY(mu_) = 0;  // bumped per pass
  std::size_t remaining_ HF_GUARDED_BY(mu_) = 0;  // workers still in the pass
  bool shutdown_ HF_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ HF_GUARDED_BY(mu_);  // first throw of a pass
  std::vector<std::thread> threads_;  // written only by the constructor
};

}  // namespace hyperfile
