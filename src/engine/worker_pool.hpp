// A pool of long-lived worker threads for parallel site drains (paper
// Section 6 applied inside the distributed runtime).
//
// One pool exists per site, created once and shared across every query
// context the site processes — spawning threads per drain would dwarf the
// few-microsecond object costs the pool is meant to parallelize. The pool
// runs one "pass" at a time: run() executes the given function on every
// worker concurrently and returns only after all of them finished, which is
// the quiescence point the distributed termination algorithms need (no
// worker can hold or produce work once run() has returned).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hyperfile {

class WorkerPool {
 public:
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Run `fn` on every worker; blocks until all of them returned. `fn` must
  /// be safe to execute concurrently with itself. Only one run() may be in
  /// flight at a time (the site event loop is the sole caller).
  void run(const std::function<void()>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable wake_cv_;   // workers wait for a new pass
  std::condition_variable done_cv_;   // run() waits for pass completion
  const std::function<void()>* task_ = nullptr;
  std::uint64_t generation_ = 0;      // bumped per pass
  std::size_t remaining_ = 0;         // workers still inside the current pass
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace hyperfile
