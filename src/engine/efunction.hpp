// The E function (paper Section 3.1): applies one filter to one object.
//
//   E(F_i, O) -> ({O_x, ...}, [O])
//
// takes a filter and an object and returns a (possibly empty) set of objects
// obtained through dereferencing, plus either the object itself (if it
// passed) or null. This file implements E for the three filter kinds exactly
// as the paper's pseudocode specifies, including:
//   * matching-variable binding on selection ("?X adds the field value to
//     the bindings for X if the tuple otherwise matches");
//   * dereference initialization (P.start = P.next = O.next + 1, iteration
//     stack copied with only the top entry incremented, empty bindings);
//   * the iterator test (O.start <= j  "already through the body", or
//     iter# >= k "chain long enough" => fall through; otherwise loop back
//     with O.start = j so the object passes next time).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/work_item.hpp"
#include "model/object.hpp"
#include "query/query.hpp"

namespace hyperfile {

/// A value captured by the -> retrieval operator during selection.
struct Retrieved {
  std::uint32_t slot = 0;
  ObjectId source;
  Value value;

  friend bool operator==(const Retrieved&, const Retrieved&) = default;
};

struct EOutcome {
  /// Objects produced by dereferencing (to be routed local/remote).
  std::vector<WorkItem> derefs;
  /// Values captured by -> patterns (only when the filter matched).
  std::vector<Retrieved> retrieved;
  /// True if O itself survives the filter.
  bool alive = false;

  /// Reset for reuse, keeping vector capacity — the drains call apply_filter
  /// with one long-lived EOutcome per worker so the hot loop never allocates
  /// once the high-water capacity is reached.
  void clear() {
    derefs.clear();
    retrieved.clear();
    alive = false;
  }
};

struct EStats {
  std::uint64_t tuples_scanned = 0;
  std::uint64_t derefs_followed = 0;
};

/// Applies filter `q.filter(item.next)` to `item`.
///
/// `obj` is the object's data; it is required for selection and dereference
/// filters and may be null for iterator filters (which touch only control
/// state — this mirrors the distributed algorithm, where an iterator test
/// needs no data access).
///
/// On return `item.next` / `item.start` / bindings are updated per the
/// paper's pseudocode. The caller owns routing of `outcome.derefs` and the
/// decision to keep processing (`outcome.alive` and item.next <= n).
///
/// `out` is cleared on entry and refilled — pass the same object every call
/// so its vectors' capacity is reused (allocation-free steady state).
void apply_filter(const Query& q, WorkItem& item, const Object* obj,
                  EOutcome& out, EStats* stats = nullptr);

/// Convenience value-returning form (tests, cold paths).
inline EOutcome apply_filter(const Query& q, WorkItem& item, const Object* obj,
                             EStats* stats = nullptr) {
  EOutcome out;
  apply_filter(q, item, obj, out, stats);
  return out;
}

/// Make the iteration stack consistent with the static nesting depth of the
/// item's next position: entering an iterator body pushes a fresh counter
/// (value 1), leaving one pops back to the enclosing loop's counter. Called
/// by engines after seeding and whenever `next` moves across loop edges.
void normalize_iter_stack(const Query& q, WorkItem& item);

}  // namespace hyperfile
