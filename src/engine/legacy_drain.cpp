#include "engine/legacy_drain.hpp"

#include <algorithm>
#include <cassert>

#include "common/metrics.hpp"

namespace hyperfile {
namespace {

// ---------------------------------------------------------------------------
// Frozen copy of the pre-overhaul E-function: a fresh EOutcome per call,
// Value materialization for the type/key fields of every tuple scanned, and
// reference (always std::regex_search) pattern matching. This is the cost
// model the old bench curves were measured under.
// ---------------------------------------------------------------------------

bool legacy_match_field(const Pattern& p, const Value& v,
                        const MatchBindings& mvars) {
  if (p.uses()) return mvars.contains(p.var(), v);
  return p.matches_reference(v);
}

EOutcome legacy_apply_select(const SelectFilter& f, WorkItem& item,
                             const Object* obj, EStats* stats) {
  EOutcome out;
  if (obj == nullptr) return out;  // missing data: object cannot pass
  bool any_match = false;
  for (const auto& t : obj->tuples()) {
    if (stats != nullptr) ++stats->tuples_scanned;
    const Value type_value = Value::string(t.type);
    const Value key_value = Value::string(t.key);
    if (!legacy_match_field(f.type_pattern, type_value, item.mvars)) continue;
    if (!legacy_match_field(f.key_pattern, key_value, item.mvars)) continue;
    if (!legacy_match_field(f.data_pattern, t.data, item.mvars)) continue;

    any_match = true;
    struct FieldRef {
      const Pattern* p;
      const Value* v;
    };
    const FieldRef fields[3] = {{&f.type_pattern, &type_value},
                                {&f.key_pattern, &key_value},
                                {&f.data_pattern, &t.data}};
    for (const auto& [p, v] : fields) {
      if (p->binds()) item.mvars.bind(p->var(), *v);
      if (p->retrieves()) out.retrieved.push_back({p->slot(), obj->id(), *v});
    }
  }
  if (any_match) {
    ++item.next;
    out.alive = true;
  }
  return out;
}

EOutcome legacy_apply_deref(const Query& q, const DerefFilter& f,
                            WorkItem& item, EStats* stats) {
  EOutcome out;
  if (const auto* values = item.mvars.lookup(f.var)) {
    for (const Value& v : *values) {
      if (!v.is_pointer()) continue;
      WorkItem child;
      child.id = v.as_pointer();
      child.start = item.next + 1;
      child.next = item.next + 1;
      child.iter_stack = item.iter_stack;
      if (child.iter_stack.empty()) child.iter_stack.push_back(1);
      ++child.iter_stack.back();
      normalize_iter_stack(q, child);
      out.derefs.push_back(std::move(child));
      if (stats != nullptr) ++stats->derefs_followed;
    }
  }
  if (f.keep_source) {
    ++item.next;
    out.alive = true;
  }
  return out;
}

EOutcome legacy_apply_iterate(const Query& q, const IterateFilter& f,
                              WorkItem& item) {
  EOutcome out;
  out.alive = true;
  const bool through_body = item.start <= f.body_start;
  const bool chain_long_enough = !f.unbounded() && item.iter_top() >= f.count;
  if (through_body || chain_long_enough) {
    ++item.next;
  } else {
    item.start = f.body_start;
    item.next = f.body_start;
  }
  normalize_iter_stack(q, item);
  return out;
}

EOutcome legacy_apply_filter(const Query& q, WorkItem& item, const Object* obj,
                             EStats* stats) {
  assert(item.next >= 1 && item.next <= q.size());
  const Filter& f = q.filter(item.next);
  EOutcome out;
  if (const auto* s = std::get_if<SelectFilter>(&f)) {
    out = legacy_apply_select(*s, item, obj, stats);
    if (out.alive) normalize_iter_stack(q, item);
  } else if (const auto* d = std::get_if<DerefFilter>(&f)) {
    out = legacy_apply_deref(q, *d, item, stats);
    if (out.alive) normalize_iter_stack(q, item);
  } else {
    out = legacy_apply_iterate(q, std::get<IterateFilter>(f), item);
  }
  return out;
}

/// Mark-table shards of the old pooled drain.
constexpr std::size_t kMarkShards = 32;

/// Per-claim batch cap of the old pooled drain.
constexpr std::size_t kClaimBatch = 64;

}  // namespace

// ---------------------------------------------------------------------------
// LegacySerialExecution — the old QueryExecution drain.
// ---------------------------------------------------------------------------

LegacySerialExecution::LegacySerialExecution(const Query& query,
                                             const SiteStore& store,
                                             ExecutionOptions options)
    : query_(query),
      store_(store),
      options_(std::move(options)),
      work_(options_.discipline),
      marks_(query_.size()) {}

Result<void> LegacySerialExecution::seed_initial() {
  std::vector<ObjectId> ids = query_.initial_ids();
  if (!query_.initial_set_name().empty()) {
    auto members = store_.set_members(query_.initial_set_name());
    if (!members.ok()) return members.error();
    const auto& m = members.value();
    ids.insert(ids.end(), m.begin(), m.end());
  }
  for (const ObjectId& id : ids) {
    WorkItem item = WorkItem::initial(id);
    normalize_iter_stack(query_, item);
    route(std::move(item));
  }
  return {};
}

void LegacySerialExecution::seed_local_set(const std::string& name) {
  auto members = store_.set_members(name);
  if (!members.ok()) return;
  for (const ObjectId& id : members.value()) {
    WorkItem item = WorkItem::initial(id);
    normalize_iter_stack(query_, item);
    route(std::move(item));
  }
}

void LegacySerialExecution::add_item(WorkItem item) {
  item.next = item.start;
  item.mvars.clear();
  normalize_iter_stack(query_, item);
  work_.push(std::move(item));
  stats_.max_working_set =
      std::max<std::uint64_t>(stats_.max_working_set, work_.size());
}

void LegacySerialExecution::route(WorkItem&& item) {
  const bool local = !options_.is_local || options_.is_local(item.id);
  if (local) {
    work_.push(std::move(item));
    stats_.max_working_set =
        std::max<std::uint64_t>(stats_.max_working_set, work_.size());
  } else {
    ++stats_.remote_handoffs;
    assert(options_.remote_sink);
    options_.remote_sink(std::move(item));
  }
}

void LegacySerialExecution::step() {
  WorkItem item = work_.pop();
  ++stats_.pops;

  const bool is_marked = options_.naive_whole_object_marking
                             ? marks_.test_any(item.id)
                             : marks_.test(item.id, item.start);
  if (is_marked) {
    ++stats_.suppressed;
    return;
  }
  const Object* obj = store_.get(item.id);
  if (obj == nullptr) {
    ++stats_.missing;
    if (options_.missing_sink) options_.missing_sink(item.id);
    return;
  }

  ++stats_.processed;
  EStats estats;
  const std::uint32_t n = query_.size();
  bool alive = true;
  while (alive && item.next <= n) {
    marks_.set(item.id, item.next);
    ++stats_.filters_applied;
    EOutcome out = legacy_apply_filter(query_, item, obj, &estats);
    for (WorkItem& child : out.derefs) route(std::move(child));
    for (Retrieved& r : out.retrieved) {
      if (retrieved_seen_.emplace(r.slot, r.source, r.value).second) {
        retrieved_.push_back(std::move(r));
        ++stats_.retrieved_values;
      }
    }
    alive = out.alive;
  }
  stats_.tuples_scanned += estats.tuples_scanned;
  stats_.derefs_followed += estats.derefs_followed;

  if (alive) {
    marks_.set(item.id, n + 1);
    if (result_members_.insert(item.id).second) {
      result_ids_.push_back(item.id);
      ++stats_.results;
    } else {
      ++stats_.duplicate_results;
    }
  }
}

void LegacySerialExecution::drain() {
  while (!work_.empty()) step();
}

std::vector<ObjectId> LegacySerialExecution::take_result_ids() {
  std::vector<ObjectId> batch(
      result_ids_.begin() + static_cast<std::ptrdiff_t>(result_take_cursor_),
      result_ids_.end());
  result_take_cursor_ = result_ids_.size();
  return batch;
}

std::vector<Retrieved> LegacySerialExecution::take_retrieved() {
  std::vector<Retrieved> batch(
      retrieved_.begin() + static_cast<std::ptrdiff_t>(retrieved_take_cursor_),
      retrieved_.end());
  retrieved_take_cursor_ = retrieved_.size();
  return batch;
}

// ---------------------------------------------------------------------------
// LegacyParallelExecution — the old ParallelExecution drain.
// ---------------------------------------------------------------------------

LegacyParallelExecution::LegacyParallelExecution(const Query& query,
                                                 const SiteStore& store,
                                                 WorkerPool& pool,
                                                 ExecutionOptions options)
    : query_(query),
      store_(store),
      options_(std::move(options)),
      pool_(pool) {
  shards_.reserve(kMarkShards);
  for (std::size_t i = 0; i < kMarkShards; ++i) {
    shards_.push_back(std::make_unique<MarkShard>(query_.size()));
  }
}

bool LegacyParallelExecution::marked(const ObjectId& id, std::uint32_t index) {
  MarkShard& s = *shards_[ObjectIdHash{}(id) % kMarkShards];
  MutexLock lock(s.mu);
  return s.table.test(id, index);
}

void LegacyParallelExecution::set_mark(const ObjectId& id,
                                       std::uint32_t index) {
  MarkShard& s = *shards_[ObjectIdHash{}(id) % kMarkShards];
  MutexLock lock(s.mu);
  s.table.set(id, index);
}

void LegacyParallelExecution::route_seed(WorkItem&& item,
                                         std::unordered_set<ObjectId>& seen) {
  if (!seen.insert(item.id).second) return;
  const bool local = !options_.is_local || options_.is_local(item.id);
  if (local) {
    std::size_t depth = 0;
    {
      MutexLock lock(mu_work_);
      work_.push_back(std::move(item));
      depth = work_.size();
    }
    metrics().gauge("engine.queue_depth_peak").max_of(
        static_cast<std::int64_t>(depth));
    MutexLock slock(mu_stats_);
    stats_.max_working_set =
        std::max<std::uint64_t>(stats_.max_working_set, depth);
  } else {
    {
      MutexLock slock(mu_stats_);
      ++stats_.remote_handoffs;
    }
    assert(options_.remote_sink);
    options_.remote_sink(std::move(item));
  }
}

Result<void> LegacyParallelExecution::seed_initial() {
  std::vector<ObjectId> ids = query_.initial_ids();
  if (!query_.initial_set_name().empty()) {
    auto members = store_.set_members(query_.initial_set_name());
    if (!members.ok()) return members.error();
    const auto& m = members.value();
    ids.insert(ids.end(), m.begin(), m.end());
  }
  std::unordered_set<ObjectId> seen;
  for (const ObjectId& id : ids) {
    WorkItem item = WorkItem::initial(id);
    normalize_iter_stack(query_, item);
    route_seed(std::move(item), seen);
  }
  return {};
}

void LegacyParallelExecution::seed_local_set(const std::string& name) {
  auto members = store_.set_members(name);
  if (!members.ok()) return;
  std::unordered_set<ObjectId> seen;
  for (const ObjectId& id : members.value()) {
    WorkItem item = WorkItem::initial(id);
    normalize_iter_stack(query_, item);
    route_seed(std::move(item), seen);
  }
}

void LegacyParallelExecution::add_item(WorkItem item) {
  item.next = item.start;
  item.mvars.clear();
  normalize_iter_stack(query_, item);
  std::size_t depth = 0;
  {
    MutexLock lock(mu_work_);
    work_.push_back(std::move(item));
    depth = work_.size();
  }
  metrics().gauge("engine.queue_depth_peak").max_of(
      static_cast<std::int64_t>(depth));
  MutexLock slock(mu_stats_);
  stats_.max_working_set =
      std::max<std::uint64_t>(stats_.max_working_set, depth);
}

bool LegacyParallelExecution::idle() const {
  MutexLock lock(mu_work_);
  return work_.empty() && active_workers_ == 0;
}

std::size_t LegacyParallelExecution::pending() const {
  MutexLock lock(mu_work_);
  return work_.size();
}

void LegacyParallelExecution::drain() {
  {
    MutexLock lock(mu_work_);
    if (work_.empty()) return;
    pass_done_ = false;
  }
  // hfverify: allow-role(worker-dispatch): the lambda runs on pool threads.
  // hfverify: allow-blocking(pool-join): same sanctioned blocking point as
  // the current engine's drain().
  pool_.run([this](std::size_t) { worker_pass(); });
  std::vector<WorkItem> remote;
  std::vector<ObjectId> missing;
  {
    MutexLock lock(mu_side_);
    remote.swap(remote_buffer_);
    missing.swap(missing_buffer_);
  }
  if (options_.missing_sink) {
    for (const ObjectId& id : missing) options_.missing_sink(id);
  }
  if (!remote.empty()) {
    assert(options_.remote_sink);
    for (WorkItem& item : remote) options_.remote_sink(std::move(item));
  }
}

void LegacyParallelExecution::worker_pass() {
  const std::uint32_t n = query_.size();
  const std::size_t workers = pool_.size();
  EngineStats local;
  std::vector<WorkItem> batch;
  batch.reserve(kClaimBatch);

  for (;;) {
    batch.clear();
    {
      MutexLock lock(mu_work_);
      while (work_.empty() && !pass_done_) work_cv_.wait(lock);
      if (pass_done_ && work_.empty()) break;
      const std::size_t claim = std::clamp<std::size_t>(
          work_.size() / workers, 1, kClaimBatch);
      while (!work_.empty() && batch.size() < claim) {
        if (options_.discipline == WorkSetDiscipline::kFifo) {
          batch.push_back(std::move(work_.front()));
          work_.pop_front();
        } else {
          batch.push_back(std::move(work_.back()));
          work_.pop_back();
        }
      }
      local.pops += batch.size();
      ++active_workers_;
    }

    std::vector<WorkItem> local_children;
    std::vector<WorkItem> remote_children;
    std::vector<ObjectId> missing_here;
    std::vector<ObjectId> survivors;
    std::vector<Retrieved> captured;
    EStats estats;
    for (WorkItem& item : batch) {
      if (marked(item.id, item.start)) {
        ++local.suppressed;
        continue;
      }
      const Object* obj = store_.get(item.id);
      if (obj == nullptr) {
        ++local.missing;
        missing_here.push_back(item.id);
        continue;
      }
      ++local.processed;
      bool alive = true;
      while (alive && item.next <= n) {
        set_mark(item.id, item.next);
        ++local.filters_applied;
        EOutcome out = legacy_apply_filter(query_, item, obj, &estats);
        for (WorkItem& child : out.derefs) {
          const bool child_local =
              !options_.is_local || options_.is_local(child.id);
          if (child_local) {
            local_children.push_back(std::move(child));
          } else {
            ++local.remote_handoffs;
            remote_children.push_back(std::move(child));
          }
        }
        for (Retrieved& r : out.retrieved) captured.push_back(std::move(r));
        alive = out.alive;
      }
      if (alive) {
        set_mark(item.id, n + 1);
        survivors.push_back(item.id);
      }
    }
    local.tuples_scanned += estats.tuples_scanned;
    local.derefs_followed += estats.derefs_followed;

    if (!survivors.empty() || !captured.empty()) {
      MutexLock lock(mu_results_);
      for (ObjectId& id : survivors) {
        if (result_members_.insert(id).second) {
          result_ids_.push_back(id);
          ++local.results;
        } else {
          ++local.duplicate_results;
        }
      }
      for (Retrieved& r : captured) {
        if (retrieved_seen_.emplace(r.slot, r.source, r.value).second) {
          retrieved_.push_back(std::move(r));
          ++local.retrieved_values;
        }
      }
    }

    if (!remote_children.empty() || !missing_here.empty()) {
      MutexLock lock(mu_side_);
      for (WorkItem& item : remote_children) {
        remote_buffer_.push_back(std::move(item));
      }
      missing_buffer_.insert(missing_buffer_.end(), missing_here.begin(),
                             missing_here.end());
    }

    {
      MutexLock lock(mu_work_);
      for (WorkItem& child : local_children) {
        work_.push_back(std::move(child));
      }
      local.max_working_set =
          std::max<std::uint64_t>(local.max_working_set, work_.size());
      --active_workers_;
      if (work_.empty() && active_workers_ == 0) {
        pass_done_ = true;
        work_cv_.notify_all();
      } else if (!work_.empty()) {
        work_cv_.notify_all();
      }
    }
  }

  MutexLock lock(mu_stats_);
  stats_ += local;
}

std::vector<ObjectId> LegacyParallelExecution::take_result_ids() {
  MutexLock lock(mu_results_);
  std::vector<ObjectId> batch(
      result_ids_.begin() + static_cast<std::ptrdiff_t>(result_take_cursor_),
      result_ids_.end());
  result_take_cursor_ = result_ids_.size();
  return batch;
}

std::vector<Retrieved> LegacyParallelExecution::take_retrieved() {
  MutexLock lock(mu_results_);
  std::vector<Retrieved> batch(
      retrieved_.begin() + static_cast<std::ptrdiff_t>(retrieved_take_cursor_),
      retrieved_.end());
  retrieved_take_cursor_ = retrieved_.size();
  return batch;
}

EngineStats LegacyParallelExecution::stats() const {
  MutexLock lock(mu_stats_);
  return stats_;
}

}  // namespace hyperfile
