// The pre-optimization site drain, frozen as a measurable baseline.
//
// This file is a faithful copy of the engine as it stood before the
// parallel-drain overhaul (lock-free marks, work-stealing queues,
// allocation-free E-function, pattern fast path — DESIGN.md §14):
//
//   * LegacySerialExecution  — the old QueryExecution drain: one item at a
//     time on the calling thread, per-call EOutcome allocation, per-field
//     Value materialization, std::regex_search for every regex pattern.
//   * LegacyParallelExecution — the old ParallelExecution: 32 mutex-guarded
//     mark-table shards, a single shared work deque with notify_all
//     wakeups, and per-push mutex-guarded stats accounting.
//
// Why keep dead weight in the tree: bench_parallel_site measures both
// engines in the same binary, so the committed old-vs-new curves come from
// one host and one build, and tests/test_parallel_drain.cpp uses the legacy
// engine as a differential oracle (both engines must produce the same
// result set on the same store). Do not "fix" or optimize this code — its
// job is to stay slow the old way.
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "common/sync.hpp"
#include "engine/execution.hpp"
#include "engine/worker_pool.hpp"

namespace hyperfile {

/// The old serial drain (QueryExecution as of PR 5), with the old
/// allocating E-function and reference (always-regex) pattern matching.
class LegacySerialExecution : public SiteExecution {
 public:
  LegacySerialExecution(const Query& query, const SiteStore& store,
                        ExecutionOptions options = {});

  const Query& query() const override { return query_; }

  HF_EVENT_LOOP_ONLY Result<void> seed_initial() override;
  HF_EVENT_LOOP_ONLY void seed_local_set(const std::string& name) override;
  HF_EVENT_LOOP_ONLY void add_item(WorkItem item) override;

  HF_EVENT_LOOP_ONLY void drain() override;

  bool idle() const override { return work_.empty(); }
  std::size_t pending() const override { return work_.size(); }

  HF_EVENT_LOOP_ONLY std::vector<ObjectId> take_result_ids() override;
  HF_EVENT_LOOP_ONLY std::vector<Retrieved> take_retrieved() override;

  HF_ANY_THREAD EngineStats stats() const override { return stats_; }

 private:
  void route(WorkItem&& item);
  void step();

  const Query query_;
  const SiteStore& store_;
  ExecutionOptions options_;
  WorkSet work_;
  MarkTable marks_;
  std::unordered_set<ObjectId> result_members_;
  std::vector<ObjectId> result_ids_;
  std::size_t result_take_cursor_ = 0;
  std::vector<Retrieved> retrieved_;
  std::size_t retrieved_take_cursor_ = 0;
  std::set<std::tuple<std::uint32_t, ObjectId, Value>> retrieved_seen_;
  EngineStats stats_;
};

/// The old pooled drain (ParallelExecution as of PR 5): sharded mutex mark
/// table, one shared deque, notify_all on every push.
class LegacyParallelExecution : public SiteExecution {
 public:
  LegacyParallelExecution(const Query& query, const SiteStore& store,
                          WorkerPool& pool, ExecutionOptions options = {});

  const Query& query() const override { return query_; }

  HF_EVENT_LOOP_ONLY Result<void> seed_initial() override;
  HF_EVENT_LOOP_ONLY void seed_local_set(const std::string& name) override;
  HF_EVENT_LOOP_ONLY void add_item(WorkItem item) override;

  HF_EVENT_LOOP_ONLY void drain() override;

  bool idle() const override;
  std::size_t pending() const override;

  HF_EVENT_LOOP_ONLY std::vector<ObjectId> take_result_ids() override;
  HF_EVENT_LOOP_ONLY std::vector<Retrieved> take_retrieved() override;

  HF_ANY_THREAD EngineStats stats() const override;

 private:
  struct MarkShard {
    Mutex mu;
    MarkTable table HF_GUARDED_BY(mu);
    explicit MarkShard(std::uint32_t filters) : table(filters) {}
  };

  bool marked(const ObjectId& id, std::uint32_t index);
  void set_mark(const ObjectId& id, std::uint32_t index);
  void route_seed(WorkItem&& item, std::unordered_set<ObjectId>& seen);
  HF_WORKER_ONLY void worker_pass();

  const Query query_;
  const SiteStore& store_;
  ExecutionOptions options_;
  WorkerPool& pool_;

  mutable Mutex mu_work_;
  std::deque<WorkItem> work_ HF_GUARDED_BY(mu_work_);
  std::size_t active_workers_ HF_GUARDED_BY(mu_work_) = 0;
  bool pass_done_ HF_GUARDED_BY(mu_work_) = false;
  CondVar work_cv_;

  std::vector<std::unique_ptr<MarkShard>> shards_;  // ctor-only

  mutable Mutex mu_results_;
  std::unordered_set<ObjectId> result_members_ HF_GUARDED_BY(mu_results_);
  std::vector<ObjectId> result_ids_ HF_GUARDED_BY(mu_results_);
  std::size_t result_take_cursor_ HF_GUARDED_BY(mu_results_) = 0;
  std::set<std::tuple<std::uint32_t, ObjectId, Value>> retrieved_seen_
      HF_GUARDED_BY(mu_results_);
  std::vector<Retrieved> retrieved_ HF_GUARDED_BY(mu_results_);
  std::size_t retrieved_take_cursor_ HF_GUARDED_BY(mu_results_) = 0;

  Mutex mu_side_;
  std::vector<WorkItem> remote_buffer_ HF_GUARDED_BY(mu_side_);
  std::vector<ObjectId> missing_buffer_ HF_GUARDED_BY(mu_side_);

  mutable Mutex mu_stats_;
  EngineStats stats_ HF_GUARDED_BY(mu_stats_);
};

}  // namespace hyperfile
