#include "engine/parallel_execution.hpp"

#include <algorithm>
#include <cassert>

#include "common/metrics.hpp"

namespace hyperfile {
namespace {

/// Mark-table shards; per-shard mutexes keep the table itself race-free
/// while licensing the paper's benign duplicate-processing window.
constexpr std::size_t kMarkShards = 32;

/// Upper bound on items a worker claims per queue-lock acquisition.
/// Claims are additionally capped by the queue depth divided over the
/// workers, so a burst of heavy objects still load-balances.
constexpr std::size_t kClaimBatch = 64;

}  // namespace

ParallelExecution::ParallelExecution(const Query& query, const SiteStore& store,
                                     WorkerPool& pool, ExecutionOptions options)
    : query_(query),
      store_(store),
      options_(std::move(options)),
      pool_(pool) {
  shards_.reserve(kMarkShards);
  for (std::size_t i = 0; i < kMarkShards; ++i) {
    shards_.push_back(std::make_unique<MarkShard>(query_.size()));
  }
}

bool ParallelExecution::marked(const ObjectId& id, std::uint32_t index) {
  MarkShard& s = *shards_[ObjectIdHash{}(id) % kMarkShards];
  MutexLock lock(s.mu);
  return s.table.test(id, index);
}

void ParallelExecution::set_mark(const ObjectId& id, std::uint32_t index) {
  MarkShard& s = *shards_[ObjectIdHash{}(id) % kMarkShards];
  MutexLock lock(s.mu);
  s.table.set(id, index);
}

void ParallelExecution::route_seed(WorkItem&& item,
                                   std::unordered_set<ObjectId>& seen) {
  if (!seen.insert(item.id).second) return;
  const bool local = !options_.is_local || options_.is_local(item.id);
  if (local) {
    // Read the depth under mu_work_, update the high-water mark after
    // releasing it: mu_work_ stays a leaf lock (never held across another
    // acquisition).
    std::size_t depth = 0;
    {
      MutexLock lock(mu_work_);
      work_.push_back(std::move(item));
      depth = work_.size();
    }
    metrics().gauge("engine.queue_depth_peak").max_of(
        static_cast<std::int64_t>(depth));
    MutexLock slock(mu_stats_);
    stats_.max_working_set =
        std::max<std::uint64_t>(stats_.max_working_set, depth);
  } else {
    {
      MutexLock slock(mu_stats_);
      ++stats_.remote_handoffs;
    }
    assert(options_.remote_sink);
    options_.remote_sink(std::move(item));
  }
}

Result<void> ParallelExecution::seed_initial() {
  std::vector<ObjectId> ids = query_.initial_ids();
  if (!query_.initial_set_name().empty()) {
    auto members = store_.set_members(query_.initial_set_name());
    if (!members.ok()) return members.error();
    const auto& m = members.value();
    ids.insert(ids.end(), m.begin(), m.end());
  }
  std::unordered_set<ObjectId> seen;
  for (const ObjectId& id : ids) {
    WorkItem item = WorkItem::initial(id);
    normalize_iter_stack(query_, item);
    route_seed(std::move(item), seen);
  }
  return {};
}

void ParallelExecution::seed_local_set(const std::string& name) {
  auto members = store_.set_members(name);
  if (!members.ok()) return;  // no local portion: contribute nothing
  std::unordered_set<ObjectId> seen;
  for (const ObjectId& id : members.value()) {
    WorkItem item = WorkItem::initial(id);
    normalize_iter_stack(query_, item);
    route_seed(std::move(item), seen);
  }
}

void ParallelExecution::add_item(WorkItem item) {
  // Arrivals carry (id, start, iter#) only; next and bindings are reset
  // locally (paper Section 3.2), exactly as in the serial execution.
  item.next = item.start;
  item.mvars.clear();
  normalize_iter_stack(query_, item);
  std::size_t depth = 0;
  {
    MutexLock lock(mu_work_);
    work_.push_back(std::move(item));
    depth = work_.size();
  }
  metrics().gauge("engine.queue_depth_peak").max_of(
      static_cast<std::int64_t>(depth));
  MutexLock slock(mu_stats_);
  stats_.max_working_set =
      std::max<std::uint64_t>(stats_.max_working_set, depth);
}

bool ParallelExecution::idle() const {
  MutexLock lock(mu_work_);
  return work_.empty() && active_workers_ == 0;
}

std::size_t ParallelExecution::pending() const {
  MutexLock lock(mu_work_);
  return work_.size();
}

void ParallelExecution::drain() {
  {
    MutexLock lock(mu_work_);
    if (work_.empty()) return;
    pass_done_ = false;
  }
  pool_.run([this] { worker_pass(); });
  // Workers have joined: W is empty and nothing is in flight. Flush the
  // side-effects they could not perform themselves, on this (event-loop)
  // thread, *before* returning — the caller sends results and releases
  // termination weight right after drain(), and every remote dereference
  // must borrow its share first.
  std::vector<WorkItem> remote;
  std::vector<ObjectId> missing;
  {
    MutexLock lock(mu_side_);
    remote.swap(remote_buffer_);
    missing.swap(missing_buffer_);
  }
  if (options_.missing_sink) {
    for (const ObjectId& id : missing) options_.missing_sink(id);
  }
  if (!remote.empty()) {
    assert(options_.remote_sink);
    for (WorkItem& item : remote) options_.remote_sink(std::move(item));
  }
}

void ParallelExecution::worker_pass() {
  const std::uint32_t n = query_.size();
  const std::size_t workers = pool_.size();
  EngineStats local;
  std::vector<WorkItem> batch;
  batch.reserve(kClaimBatch);

  for (;;) {
    batch.clear();
    {
      MutexLock lock(mu_work_);
      while (work_.empty() && !pass_done_) work_cv_.wait(lock);
      if (pass_done_ && work_.empty()) break;
      // Claim a slice proportional to the backlog so heavy objects spread
      // across workers instead of clumping into one 64-item batch.
      const std::size_t claim = std::clamp<std::size_t>(
          work_.size() / workers, 1, kClaimBatch);
      while (!work_.empty() && batch.size() < claim) {
        if (options_.discipline == WorkSetDiscipline::kFifo) {
          batch.push_back(std::move(work_.front()));
          work_.pop_front();
        } else {
          batch.push_back(std::move(work_.back()));
          work_.pop_back();
        }
      }
      local.pops += batch.size();
      ++active_workers_;
    }

    // --- object processing, outside every shared lock ---
    std::vector<WorkItem> local_children;
    std::vector<WorkItem> remote_children;
    std::vector<ObjectId> missing_here;
    std::vector<ObjectId> survivors;
    std::vector<Retrieved> captured;
    EStats estats;
    for (WorkItem& item : batch) {
      // Pop-time guard (the naive whole-object ablation is serial-only).
      if (marked(item.id, item.start)) {
        ++local.suppressed;
        continue;
      }
      const Object* obj = store_.get(item.id);
      if (obj == nullptr) {
        ++local.missing;
        missing_here.push_back(item.id);
        continue;
      }
      ++local.processed;
      bool alive = true;
      while (alive && item.next <= n) {
        set_mark(item.id, item.next);
        ++local.filters_applied;
        EOutcome out = apply_filter(query_, item, obj, &estats);
        for (WorkItem& child : out.derefs) {
          const bool child_local =
              !options_.is_local || options_.is_local(child.id);
          if (child_local) {
            local_children.push_back(std::move(child));
          } else {
            ++local.remote_handoffs;
            remote_children.push_back(std::move(child));
          }
        }
        for (Retrieved& r : out.retrieved) captured.push_back(std::move(r));
        alive = out.alive;
      }
      if (alive) {
        set_mark(item.id, n + 1);
        survivors.push_back(item.id);
      }
    }
    local.tuples_scanned += estats.tuples_scanned;
    local.derefs_followed += estats.derefs_followed;

    if (!survivors.empty() || !captured.empty()) {
      MutexLock lock(mu_results_);
      for (ObjectId& id : survivors) {
        if (result_members_.insert(id).second) {
          result_ids_.push_back(id);
          ++local.results;
        } else {
          ++local.duplicate_results;
        }
      }
      for (Retrieved& r : captured) {
        if (retrieved_seen_.emplace(r.slot, r.source, r.value).second) {
          retrieved_.push_back(std::move(r));
          ++local.retrieved_values;
        }
      }
    }

    if (!remote_children.empty() || !missing_here.empty()) {
      MutexLock lock(mu_side_);
      for (WorkItem& item : remote_children) {
        remote_buffer_.push_back(std::move(item));
      }
      missing_buffer_.insert(missing_buffer_.end(), missing_here.begin(),
                             missing_here.end());
    }

    {
      MutexLock lock(mu_work_);
      for (WorkItem& child : local_children) {
        work_.push_back(std::move(child));
      }
      local.max_working_set =
          std::max<std::uint64_t>(local.max_working_set, work_.size());
      --active_workers_;
      if (work_.empty() && active_workers_ == 0) {
        pass_done_ = true;
        work_cv_.notify_all();
      } else if (!work_.empty()) {
        work_cv_.notify_all();
      }
    }
  }

  MutexLock lock(mu_stats_);
  stats_ += local;
}

std::vector<ObjectId> ParallelExecution::take_result_ids() {
  MutexLock lock(mu_results_);
  std::vector<ObjectId> batch(
      result_ids_.begin() + static_cast<std::ptrdiff_t>(result_take_cursor_),
      result_ids_.end());
  result_take_cursor_ = result_ids_.size();
  return batch;
}

std::vector<Retrieved> ParallelExecution::take_retrieved() {
  MutexLock lock(mu_results_);
  std::vector<Retrieved> batch(
      retrieved_.begin() + static_cast<std::ptrdiff_t>(retrieved_take_cursor_),
      retrieved_.end());
  retrieved_take_cursor_ = retrieved_.size();
  return batch;
}

EngineStats ParallelExecution::stats() const {
  MutexLock lock(mu_stats_);
  return stats_;
}

}  // namespace hyperfile
