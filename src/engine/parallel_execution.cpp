#include "engine/parallel_execution.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/metrics.hpp"

namespace hyperfile {
namespace {

/// Upper bound on items a worker claims per queue-lock acquisition, own or
/// stolen. Claims leave the remainder in place, so a burst of heavy objects
/// stays stealable instead of clumping into one worker's batch.
constexpr std::size_t kClaimBatch = 64;

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

ParallelExecution::ParallelExecution(const Query& query, const SiteStore& store,
                                     WorkerPool& pool, ExecutionOptions options)
    : query_(query),
      store_(store),
      options_(std::move(options)),
      pool_(pool),
      amarks_(query_.size()) {
  queues_.reserve(pool_.size());
  scratch_.reserve(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
    auto s = std::make_unique<WorkerScratch>();
    s->batch.reserve(kClaimBatch);
    scratch_.push_back(std::move(s));
  }
}

void ParallelExecution::push_from_loop(WorkItem&& item) {
  WorkerQueue& q = *queues_[seed_cursor_];
  seed_cursor_ = (seed_cursor_ + 1) % queues_.size();
  {
    MutexLock lock(q.mu);
    q.dq.push_back(std::move(item));
  }
  ++loop_pending_;
  seed_peak_ = std::max<std::uint64_t>(seed_peak_, loop_pending_);
  metrics().gauge("engine.queue_depth_peak").max_of(
      static_cast<std::int64_t>(loop_pending_));
}

void ParallelExecution::route_seed(WorkItem&& item,
                                   std::unordered_set<ObjectId>& seen) {
  if (!seen.insert(item.id).second) return;
  const bool local = !options_.is_local || options_.is_local(item.id);
  if (local) {
    push_from_loop(std::move(item));
  } else {
    {
      MutexLock slock(mu_stats_);
      ++stats_.remote_handoffs;
    }
    assert(options_.remote_sink);
    options_.remote_sink(std::move(item));
  }
}

Result<void> ParallelExecution::seed_initial() {
  std::vector<ObjectId> ids = query_.initial_ids();
  if (!query_.initial_set_name().empty()) {
    auto members = store_.set_members(query_.initial_set_name());
    if (!members.ok()) return members.error();
    const auto& m = members.value();
    ids.insert(ids.end(), m.begin(), m.end());
  }
  std::unordered_set<ObjectId> seen;
  for (const ObjectId& id : ids) {
    WorkItem item = WorkItem::initial(id);
    normalize_iter_stack(query_, item);
    route_seed(std::move(item), seen);
  }
  return {};
}

void ParallelExecution::seed_local_set(const std::string& name) {
  auto members = store_.set_members(name);
  if (!members.ok()) return;  // no local portion: contribute nothing
  std::unordered_set<ObjectId> seen;
  for (const ObjectId& id : members.value()) {
    WorkItem item = WorkItem::initial(id);
    normalize_iter_stack(query_, item);
    route_seed(std::move(item), seen);
  }
}

void ParallelExecution::add_item(WorkItem item) {
  // Arrivals carry (id, start, iter#) only; next and bindings are reset
  // locally (paper Section 3.2), exactly as in the serial execution.
  item.next = item.start;
  item.mvars.clear();
  normalize_iter_stack(query_, item);
  push_from_loop(std::move(item));
}

bool ParallelExecution::idle() const { return pending() == 0; }

std::size_t ParallelExecution::pending() const {
  // Event-loop thread, between passes: workers are parked, queues stable.
  std::size_t total = 0;
  for (const auto& q : queues_) {
    MutexLock lock(q->mu);
    total += q->dq.size();
  }
  return total;
}

void ParallelExecution::drain() {
  if (pending() == 0) return;
  {
    MutexLock lock(mu_pass_);
    pass_done_ = false;
    idle_workers_ = 0;
  }
  // hfverify: allow-role(worker-dispatch): the lambda runs on pool
  // threads; drain() only launches the pass.
  // hfverify: allow-blocking(pool-join): drain() is the one sanctioned
  // blocking point of the loop — it must not return before W is empty.
  pool_.run([this](std::size_t w) { worker_pass(w); });
  loop_pending_ = 0;  // the join guarantees every queue drained
  // Workers have joined: W is empty and nothing is in flight. Flush the
  // side-effects they could not perform themselves, on this (event-loop)
  // thread, *before* returning — the caller sends results and releases
  // termination weight right after drain(), and every remote dereference
  // must borrow its share first.
  std::vector<WorkItem> remote;
  std::vector<ObjectId> missing;
  {
    MutexLock lock(mu_side_);
    remote.swap(remote_buffer_);
    missing.swap(missing_buffer_);
  }
  if (options_.missing_sink) {
    for (const ObjectId& id : missing) options_.missing_sink(id);
  }
  if (!remote.empty()) {
    assert(options_.remote_sink);
    for (WorkItem& item : remote) options_.remote_sink(std::move(item));
  }
}

std::size_t ParallelExecution::claim_own(std::size_t w,
                                         std::vector<WorkItem>& batch) {
  WorkerQueue& q = *queues_[w];
  // Serial-observable path: with one worker, LIFO must interleave children
  // ahead of older items exactly as the serial WorkSet does, which batch
  // claiming would break (batch[1] would run before batch[0]'s children).
  // Claim one item at a time there — the queue lock is uncontended with no
  // thieves around. FIFO order is batch-insensitive, and with multiple
  // workers no inter-item order is promised at all.
  const std::size_t limit =
      (options_.discipline == WorkSetDiscipline::kLifo && queues_.size() == 1)
          ? 1
          : kClaimBatch;
  MutexLock lock(q.mu);
  const std::size_t take = std::min(q.dq.size(), limit);
  for (std::size_t i = 0; i < take; ++i) {
    if (options_.discipline == WorkSetDiscipline::kFifo) {
      batch.push_back(std::move(q.dq.front()));
      q.dq.pop_front();
    } else {
      batch.push_back(std::move(q.dq.back()));
      q.dq.pop_back();
    }
  }
  return take;
}

std::size_t ParallelExecution::steal(std::size_t w,
                                     std::vector<WorkItem>& batch,
                                     EngineStats& local) {
  const std::size_t nq = queues_.size();
  for (std::size_t off = 1; off < nq; ++off) {
    WorkerQueue& victim = *queues_[(w + off) % nq];
    bool leftovers = false;
    std::size_t took = 0;
    {
      MutexLock lock(victim.mu);
      if (victim.dq.empty()) continue;
      // Take the front half: for kLifo that is the end opposite the owner
      // (oldest, shallowest items — the classic steal order); for kFifo the
      // owner claims the same end, but claims are batched so the overlap
      // window is one lock acquisition either way.
      took = std::min((victim.dq.size() + 1) / 2, kClaimBatch);
      for (std::size_t i = 0; i < took; ++i) {
        batch.push_back(std::move(victim.dq.front()));
        victim.dq.pop_front();
      }
      leftovers = !victim.dq.empty();
    }
    ++local.steals;
    local.stolen_items += took;
    if (leftovers) {
      // Chain the wakeup: the victim's queue still has work another parked
      // thief could take.
      MutexLock lock(mu_pass_);
      if (idle_workers_ > 0) {
        ++work_epoch_;
        pass_cv_.notify_one();
      }
    }
    return took;
  }
  return 0;
}

void ParallelExecution::worker_pass(std::size_t w) {
  const std::uint32_t n = query_.size();
  const std::size_t nq = queues_.size();
  EngineStats local;
  WorkerScratch& s = *scratch_[w];

  for (;;) {
    s.batch.clear();
    if (claim_own(w, s.batch) == 0) steal(w, s.batch, local);
    if (s.batch.empty()) {
      // Own queue and every victim's queue were empty: park. Only owners
      // push to a queue, so once all workers are parked no queue can refill
      // — the last one to park ends the pass.
      const auto t0 = std::chrono::steady_clock::now();
      bool done = false;
      {
        MutexLock lock(mu_pass_);
        ++idle_workers_;
        if (idle_workers_ == nq) {
          pass_done_ = true;
          pass_cv_.notify_all();
        } else {
          const std::uint64_t seen = work_epoch_;
          while (!pass_done_ && work_epoch_ == seen) pass_cv_.wait(lock);
        }
        done = pass_done_;
        if (!done) --idle_workers_;
      }
      local.queue_wait_us += elapsed_us(t0);
      if (done) break;
      continue;  // woken: rescan for work
    }
    local.pops += s.batch.size();

    // --- object processing: no locks, no allocation in steady state ---
    s.local_children.clear();
    s.remote_children.clear();
    s.missing_here.clear();
    s.survivors.clear();
    s.captured.clear();
    EStats estats;
    for (WorkItem& item : s.batch) {
      // Pop-time guard (the naive whole-object ablation is serial-only).
      if (amarks_.test(item.id, item.start)) {
        ++local.suppressed;
        continue;
      }
      const Object* obj = store_.get(item.id);
      if (obj == nullptr) {
        ++local.missing;
        s.missing_here.push_back(item.id);
        continue;
      }
      ++local.processed;
      bool alive = true;
      while (alive && item.next <= n) {
        amarks_.set(item.id, item.next);
        ++local.filters_applied;
        apply_filter(query_, item, obj, s.out, &estats);
        for (WorkItem& child : s.out.derefs) {
          const bool child_local =
              !options_.is_local || options_.is_local(child.id);
          if (child_local) {
            s.local_children.push_back(std::move(child));
          } else {
            ++local.remote_handoffs;
            s.remote_children.push_back(std::move(child));
          }
        }
        for (Retrieved& r : s.out.retrieved) {
          s.captured.push_back(std::move(r));
        }
        alive = s.out.alive;
      }
      if (alive) {
        amarks_.set(item.id, n + 1);
        s.survivors.push_back(item.id);
      }
    }
    local.tuples_scanned += estats.tuples_scanned;
    local.derefs_followed += estats.derefs_followed;

    if (!s.survivors.empty() || !s.captured.empty()) {
      MutexLock lock(mu_results_);
      for (ObjectId& id : s.survivors) {
        if (result_members_.insert(id).second) {
          result_ids_.push_back(id);
          ++local.results;
        } else {
          ++local.duplicate_results;
        }
      }
      for (Retrieved& r : s.captured) {
        if (retrieved_seen_.emplace(r.slot, r.source, r.value).second) {
          retrieved_.push_back(std::move(r));
          ++local.retrieved_values;
        }
      }
    }

    if (!s.remote_children.empty() || !s.missing_here.empty()) {
      MutexLock lock(mu_side_);
      for (WorkItem& item : s.remote_children) {
        remote_buffer_.push_back(std::move(item));
      }
      missing_buffer_.insert(missing_buffer_.end(), s.missing_here.begin(),
                             s.missing_here.end());
    }

    if (!s.local_children.empty()) {
      std::size_t depth = 0;
      {
        WorkerQueue& q = *queues_[w];
        MutexLock lock(q.mu);
        for (WorkItem& child : s.local_children) {
          q.dq.push_back(std::move(child));
        }
        depth = q.dq.size();
      }
      local.max_working_set =
          std::max<std::uint64_t>(local.max_working_set, depth);
      // Wake at most one parked thief, and only if somebody is parked — a
      // push with every worker busy costs one uncontended lock per batch.
      MutexLock lock(mu_pass_);
      if (idle_workers_ > 0) {
        ++work_epoch_;
        pass_cv_.notify_one();
      }
    }
  }

  metrics().counter("engine.steals").inc(local.steals);
  metrics().counter("engine.stolen_items").inc(local.stolen_items);
  metrics().counter("engine.queue_wait_us").inc(local.queue_wait_us);
  metrics().counter("engine.suppressed").inc(local.suppressed);
  MutexLock lock(mu_stats_);
  stats_ += local;
}

std::vector<ObjectId> ParallelExecution::take_result_ids() {
  MutexLock lock(mu_results_);
  std::vector<ObjectId> batch(
      result_ids_.begin() + static_cast<std::ptrdiff_t>(result_take_cursor_),
      result_ids_.end());
  result_take_cursor_ = result_ids_.size();
  return batch;
}

std::vector<Retrieved> ParallelExecution::take_retrieved() {
  MutexLock lock(mu_results_);
  std::vector<Retrieved> batch(
      retrieved_.begin() + static_cast<std::ptrdiff_t>(retrieved_take_cursor_),
      retrieved_.end());
  retrieved_take_cursor_ = retrieved_.size();
  return batch;
}

EngineStats ParallelExecution::stats() const {
  EngineStats s;
  {
    MutexLock lock(mu_stats_);
    s = stats_;
  }
  // Fold in the event-loop-side seeding high-water mark (loop-confined, so
  // reading it here — on the same thread — needs no lock).
  // hfverify: allow-role(stats-fold): benign racy read of a monotonic
  // high-water mark when called off-loop (stop() after join).
  s.max_working_set = std::max(s.max_working_set, seed_peak_);
  return s;
}

}  // namespace hyperfile
