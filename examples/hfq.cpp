// hfq — query a hyperfiled deployment from the command line.
//
//   usage: hfq CONFIG [--at SITE] [--trace[=FILE]] QUERY
//
//   $ hfq cluster.conf 'Root [ (pointer, "Tree", ?X) | ^^X ]* (skey, "Rand10p", 5) -> T'
//
// The client binds an ephemeral TCP port with an id outside the server
// table; servers reply over the learned connection, so clients need no
// configuration entry (the paper's client "ran at a separate machine from
// any of the servers").
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "dist/client.hpp"
#include "net/tcp.hpp"
#include "query/parser.hpp"

using namespace hyperfile;

namespace {

Result<std::vector<TcpPeer>> read_config(const std::string& path) {
  std::ifstream file(path);
  if (!file) return make_error(Errc::kIo, "cannot open config " + path);
  std::vector<TcpPeer> peers;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    TcpPeer peer;
    int port = 0;
    if (!(is >> peer.host >> port)) {
      return make_error(Errc::kInvalidArgument, "bad config line: " + line);
    }
    peer.port = static_cast<std::uint16_t>(port);
    peers.push_back(std::move(peer));
  }
  if (peers.empty()) return make_error(Errc::kInvalidArgument, "empty config");
  return peers;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string query_text;
  SiteId at = 0;
  bool want_trace = false;
  std::string trace_json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--at" && i + 1 < argc) {
      at = static_cast<SiteId>(std::stoul(argv[++i]));
    } else if (arg == "--trace") {
      want_trace = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      want_trace = true;
      trace_json_path = arg.substr(8);
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      if (!query_text.empty()) query_text += " ";
      query_text += arg;
    }
  }
  if (config_path.empty() || query_text.empty()) {
    std::printf("hfq — HyperFile query client\n"
                "  hfq CONFIG [--at SITE] [--trace[=FILE]] QUERY\n"
                "  --trace        print the per-site query trace\n"
                "  --trace=FILE   also write it to FILE as JSON\n"
                "example:\n"
                "  hfq cluster.conf 'Root [ (pointer, \"Tree\", ?X) | ^^X ]* "
                "(skey, \"Rand10p\", 5) -> T'\n");
    return 0;
  }

  auto peers = read_config(config_path);
  if (!peers.ok()) {
    std::fprintf(stderr, "%s\n", peers.error().to_string().c_str());
    return 1;
  }
  if (at >= peers.value().size()) {
    std::fprintf(stderr, "--at %u out of range\n", at);
    return 1;
  }

  auto q = parse_query(query_text);
  if (!q.ok()) {
    std::fprintf(stderr, "parse error: %s\n", q.error().to_string().c_str());
    return 1;
  }

  // Random client id well outside the server table; servers learn the
  // return route from our connection.
  std::random_device rd;
  const SiteId client_id = 1'000'000 + (rd() % 1'000'000);
  auto net = TcpNetwork::create(client_id, peers.value());
  if (!net.ok()) {
    std::fprintf(stderr, "%s\n", net.error().to_string().c_str());
    return 1;
  }

  Client client(std::move(net).value(), at);
  auto r = client.run(q.value(), Duration(30'000'000));
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.error().to_string().c_str());
    return 1;
  }
  const auto& res = r.value();
  if (res.count_only) {
    std::printf("%llu matching objects (result set left distributed as '%s')\n",
                static_cast<unsigned long long>(res.total_count),
                q.value().result_set_name().c_str());
  } else {
    std::printf("%zu result(s)\n", res.ids.size());
    for (const ObjectId& id : res.ids) {
      std::printf("  %s\n", id.to_string().c_str());
    }
    for (const auto& v : res.values) {
      std::printf("  %s = %s\n", res.slot_names[v.slot].c_str(),
                  v.value.to_string().c_str());
    }
  }
  if (want_trace) {
    std::printf("%s", res.trace.to_text().c_str());
    if (!trace_json_path.empty()) {
      std::ofstream tout(trace_json_path);
      if (!tout) {
        std::fprintf(stderr, "cannot write %s\n", trace_json_path.c_str());
        return 1;
      }
      tout << res.trace.to_json() << "\n";
      std::printf("wrote trace to %s\n", trace_json_path.c_str());
    }
  }
  return 0;
}
