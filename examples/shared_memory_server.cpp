// Shared-memory multiprocessor HyperFile server (paper Section 6).
//
// One store, many worker threads sharing the query's working set, mark
// table, and result set. The paper notes strict locking is unnecessary —
// duplicate processing can only create duplicate (deduplicated) answers —
// and our engine exploits exactly that: objects are processed outside the
// lock. This example runs the same closure query serially and with
// increasing worker counts, verifying identical results and reporting wall
// time.
#include <chrono>
#include <thread>
#include <cstdio>

#include "engine/local_engine.hpp"
#include "engine/parallel_engine.hpp"
#include "workload/paper_workload.hpp"

using namespace hyperfile;

int main() {
  SiteStore store(0);
  SiteStore* ptr[] = {&store};
  workload::WorkloadConfig cfg;
  cfg.num_objects = 27'000;  // 100x the paper's data set: work worth sharing
  workload::populate_paper_workload(ptr, cfg);

  Query q = workload::closure_query(workload::kRandKeys[6],
                                    workload::kRand10pKey, 5);

  auto time_run = [&](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = fn();
    const auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    return std::make_pair(std::move(r), dt);
  };

  std::printf("shared-memory server, %zu objects, transitive closure + key\n",
              static_cast<std::size_t>(cfg.num_objects));
  std::printf("host reports %u hardware thread(s); with 1, expect identical\n"
              "results but flat times — the point is correctness under the\n"
              "paper's relaxed locking, speedup needs real cores.\n\n",
              std::thread::hardware_concurrency());

  LocalEngine serial(store);
  auto [rs, ts] = time_run([&] { return serial.run_readonly(q); });
  if (!rs.ok()) return 1;
  std::printf("%-10s %8lld us   %zu results\n", "serial",
              static_cast<long long>(ts.count()), rs.value().ids.size());

  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    ParallelEngine par(store, workers);
    auto [rp, tp] = time_run([&] { return par.run(q); });
    if (!rp.ok()) return 1;
    const bool same = [&] {
      auto a = rs.value().ids;
      auto b = rp.value().ids;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      return a == b;
    }();
    std::printf("%zu workers  %8lld us   %zu results   identical to serial: %s"
                "   (duplicate answers deduped: %llu)\n",
                workers, static_cast<long long>(tp.count()),
                rp.value().ids.size(), same ? "yes" : "NO",
                static_cast<unsigned long long>(rp.value().stats.duplicate_results));
  }
  return 0;
}
