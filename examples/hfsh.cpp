// hfsh — an interactive HyperFile shell.
//
// A small driving application in the spirit of the paper's Section 6
// ("We are currently working on a simple driving application ... it lets the
// user pose HyperFile style queries that will be forwarded to HyperFile for
// processing"). Single-site store, full query language, snapshots.
//
//   usage: hfsh [script]
//     with a script file: executes its lines;
//     on a terminal: interactive REPL;
//     otherwise (e.g. run from the examples loop): executes a built-in demo.
//
// Commands:
//   demo                       load the built-in sample library
//   load PATH / save PATH      snapshot I/O
//   create SPEC...             new object, e.g.:
//                                create s:Title="My doc" n:Year=1991 k:draft p:Cites=0.3
//                              (s: string, n: number, k: keyword, p: pointer birth.seq,
//                               t: text body)
//   edit ID SPEC...            append tuples to an existing object
//   show ID                    print an object (ID = birth.seq)
//   sets                       list named sets
//   set NAME ID...             bind NAME to the listed objects
//   all NAME                   bind NAME to every stored object
//   stats                      store statistics
//   rewrite QUERY              show the rewriter's output for a query
//   help                       this text
//   quit / exit
//   anything else              parsed and executed as a HyperFile query
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include <random>

#include "dist/client.hpp"
#include "engine/local_engine.hpp"
#include "index/explain.hpp"
#include "net/tcp.hpp"
#include "query/parser.hpp"
#include "query/rewrite.hpp"
#include "store/gc.hpp"
#include "store/set_algebra.hpp"
#include "store/snapshot.hpp"
#include "store/versioning.hpp"

using namespace hyperfile;

namespace {

/// Split a line into tokens, keeping "quoted strings" (quotes stripped,
/// token may contain spaces) intact and attached to a prefix like s:Key=.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  bool have = false;
  for (char c : line) {
    if (c == '"') {
      in_quotes = !in_quotes;
      have = true;
      continue;
    }
    if (!in_quotes && std::isspace(static_cast<unsigned char>(c))) {
      if (have || !cur.empty()) out.push_back(cur);
      cur.clear();
      have = false;
      continue;
    }
    cur += c;
  }
  if (have || !cur.empty()) out.push_back(cur);
  return out;
}

Result<ObjectId> parse_id(const std::string& s) {
  const auto dot = s.find('.');
  if (dot == std::string::npos) {
    return make_error(Errc::kInvalidArgument, "object id must be birth.seq");
  }
  try {
    return ObjectId(static_cast<SiteId>(std::stoul(s.substr(0, dot))),
                    std::stoull(s.substr(dot + 1)));
  } catch (const std::exception&) {
    return make_error(Errc::kInvalidArgument, "bad object id '" + s + "'");
  }
}

/// SPEC -> Tuple. Prefixes: s: string, n: number, k: keyword, p: pointer,
/// t: text. Key=value after the prefix (keyword takes just the word).
Result<Tuple> parse_spec(const std::string& spec) {
  if (spec.size() < 2 || spec[1] != ':') {
    return make_error(Errc::kInvalidArgument,
                      "tuple spec must start with s:/n:/k:/p:/t: — got '" +
                          spec + "'");
  }
  const char kind = spec[0];
  const std::string rest = spec.substr(2);
  if (kind == 'k') {
    if (rest.empty()) return make_error(Errc::kInvalidArgument, "empty keyword");
    return Tuple::keyword(rest);
  }
  const auto eq = rest.find('=');
  if (eq == std::string::npos) {
    return make_error(Errc::kInvalidArgument, "spec needs Key=Value: " + spec);
  }
  const std::string key = rest.substr(0, eq);
  const std::string value = rest.substr(eq + 1);
  switch (kind) {
    case 's':
      return Tuple::string(key, value);
    case 't':
      return Tuple::text(key, value);
    case 'n':
      try {
        return Tuple::number(key, std::stoll(value));
      } catch (const std::exception&) {
        return make_error(Errc::kInvalidArgument, "bad number '" + value + "'");
      }
    case 'p': {
      auto id = parse_id(value);
      if (!id.ok()) return id.error();
      return Tuple::pointer(key, id.value());
    }
    default:
      return make_error(Errc::kInvalidArgument,
                        std::string("unknown spec kind '") + kind + "'");
  }
}

class Shell {
 public:
  Shell() : store_(0), engine_(store_) {}

  /// Executes one line; returns false on quit.
  bool execute(const std::string& line);

  void load_demo();

 private:
  void cmd_create(const std::vector<std::string>& args);
  void cmd_edit(const std::vector<std::string>& args);
  void cmd_show(const std::vector<std::string>& args);
  void cmd_set(const std::vector<std::string>& args);
  void cmd_connect(const std::vector<std::string>& args);
  void run_query(const std::string& text);

  SiteStore store_;
  LocalEngine engine_;
  /// When connected to a hyperfiled deployment, queries go remote.
  std::unique_ptr<Client> remote_;
};

void Shell::load_demo() {
  ObjectId codd = store_.allocate();
  ObjectId system_r = store_.allocate();
  ObjectId rstar = store_.allocate();
  ObjectId hyperfile = store_.allocate();
  store_.put(Object(codd, {Tuple::string("Title", "A Relational Model of Data"),
                           Tuple::string("Author", "Codd"),
                           Tuple::number("Year", 1970),
                           Tuple::keyword("database"),
                           Tuple::pointer("Cites", codd)}));
  store_.put(Object(system_r, {Tuple::string("Title", "System R: An Overview"),
                               Tuple::string("Author", "Astrahan"),
                               Tuple::number("Year", 1976),
                               Tuple::keyword("database"),
                               Tuple::pointer("Cites", codd)}));
  store_.put(Object(rstar, {Tuple::string("Title", "R*: An Overview"),
                            Tuple::string("Author", "Williams"),
                            Tuple::number("Year", 1981),
                            Tuple::keyword("distributed"),
                            Tuple::pointer("Cites", system_r),
                            Tuple::pointer("Cites", codd)}));
  store_.put(Object(hyperfile,
                    {Tuple::string("Title", "HyperFile filtering queries"),
                     Tuple::string("Author", "Clifton"),
                     Tuple::number("Year", 1991),
                     Tuple::keyword("distributed"),
                     Tuple::keyword("hypertext"),
                     Tuple::pointer("Cites", rstar),
                     Tuple::pointer("Cites", codd)}));
  std::vector<ObjectId> s = {hyperfile};
  store_.create_set("S", s);
  std::printf("demo library loaded: 4 papers, set S = {%s}\n",
              hyperfile.to_string().c_str());
}

void Shell::cmd_create(const std::vector<std::string>& args) {
  Object obj(store_.allocate());
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto t = parse_spec(args[i]);
    if (!t.ok()) {
      std::printf("error: %s\n", t.error().to_string().c_str());
      return;
    }
    obj.add(std::move(t).value());
  }
  const ObjectId id = store_.put(std::move(obj));
  std::printf("created %s\n", id.to_string().c_str());
}

void Shell::cmd_edit(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    std::printf("usage: edit ID SPEC...\n");
    return;
  }
  auto id = parse_id(args[1]);
  if (!id.ok()) {
    std::printf("error: %s\n", id.error().to_string().c_str());
    return;
  }
  for (std::size_t i = 2; i < args.size(); ++i) {
    auto t = parse_spec(args[i]);
    if (!t.ok()) {
      std::printf("error: %s\n", t.error().to_string().c_str());
      return;
    }
    if (auto r = store_.add_tuple(id.value(), std::move(t).value()); !r.ok()) {
      std::printf("error: %s\n", r.error().to_string().c_str());
      return;
    }
  }
  std::printf("edited %s\n", id.value().to_string().c_str());
}

void Shell::cmd_show(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    std::printf("usage: show ID\n");
    return;
  }
  auto id = parse_id(args[1]);
  if (!id.ok()) {
    std::printf("error: %s\n", id.error().to_string().c_str());
    return;
  }
  const Object* obj = store_.get(id.value());
  if (obj == nullptr) {
    std::printf("no object %s\n", id.value().to_string().c_str());
    return;
  }
  std::printf("%s\n", obj->to_string().c_str());
}

void Shell::cmd_set(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::printf("usage: set NAME ID...\n");
    return;
  }
  std::vector<ObjectId> members;
  for (std::size_t i = 2; i < args.size(); ++i) {
    auto id = parse_id(args[i]);
    if (!id.ok()) {
      std::printf("error: %s\n", id.error().to_string().c_str());
      return;
    }
    members.push_back(id.value());
  }
  store_.create_set(args[1], members);
  std::printf("set %s = %zu members\n", args[1].c_str(), members.size());
}

void Shell::cmd_connect(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::printf("usage: connect CONFIG [SITE]   (disconnect: back to local)\n");
    return;
  }
  std::ifstream file(args[1]);
  if (!file) {
    std::printf("cannot open config %s\n", args[1].c_str());
    return;
  }
  std::vector<TcpPeer> peers;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    TcpPeer peer;
    int port = 0;
    if (is >> peer.host >> port) {
      peer.port = static_cast<std::uint16_t>(port);
      peers.push_back(std::move(peer));
    }
  }
  if (peers.empty()) {
    std::printf("empty config\n");
    return;
  }
  const SiteId at =
      args.size() >= 3 ? static_cast<SiteId>(std::stoul(args[2])) : 0;
  std::random_device rd;
  auto net = TcpNetwork::create(1'000'000 + (rd() % 1'000'000), peers);
  if (!net.ok()) {
    std::printf("connect failed: %s\n", net.error().to_string().c_str());
    return;
  }
  remote_ = std::make_unique<Client>(std::move(net).value(), at);
  std::printf("connected: %zu sites, originating at site %u "
              "(queries now run remotely; data commands stay local)\n",
              peers.size(), at);
}

void Shell::run_query(const std::string& text) {
  auto q = parse_query(text);
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.error().to_string().c_str());
    return;
  }
  if (remote_ != nullptr) {
    auto r = remote_->run(q.value(), Duration(30'000'000));
    if (!r.ok()) {
      std::printf("query error: %s\n", r.error().to_string().c_str());
      return;
    }
    const auto& res = r.value();
    if (res.count_only) {
      std::printf("%llu matching objects (left distributed)\n",
                  static_cast<unsigned long long>(res.total_count));
      return;
    }
    std::printf("%zu result(s)\n", res.ids.size());
    for (const ObjectId& id : res.ids) {
      std::printf("  %s\n", id.to_string().c_str());
    }
    for (const auto& v : res.values) {
      std::printf("  %s = %s\n", res.slot_names[v.slot].c_str(),
                  v.value.to_string().c_str());
    }
    return;
  }
  auto r = engine_.run(q.value());
  if (!r.ok()) {
    std::printf("query error: %s\n", r.error().to_string().c_str());
    return;
  }
  const auto& res = r.value();
  std::printf("%zu result(s)", res.ids.size());
  if (!q.value().result_set_name().empty()) {
    std::printf("  -> bound to %s", q.value().result_set_name().c_str());
  }
  std::printf("\n");
  for (const ObjectId& id : res.ids) {
    const Object* obj = store_.get(id);
    const Tuple* title = obj != nullptr ? obj->find("string", "Title") : nullptr;
    std::printf("  %-12s %s\n", id.to_string().c_str(),
                title != nullptr ? title->data.as_string().c_str() : "");
  }
  for (const auto& v : res.values) {
    std::printf("  %s = %s\n", res.slot_names[v.slot].c_str(),
                v.value.to_string().c_str());
  }
}

bool Shell::execute(const std::string& line) {
  const auto args = tokenize(line);
  if (args.empty() || args[0][0] == '#') return true;
  const std::string& cmd = args[0];

  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "help") {
    std::printf("%s",
                "commands: demo | load P | save P | create SPEC... | edit ID "
                "SPEC... |\n  show ID | sets | set NAME ID... | all NAME | "
                "stats | gc |\n  checkpoint ID SPEC... | history ID | "
                "rewrite Q | explain Q |\n  union/intersect/diff OUT A B | "
                "connect CONFIG [SITE] | disconnect | quit\nanything else "
                "runs as a "
                "query, e.g.:\n  S [ (pointer, \"Cites\", ?X) | ^^X ]* "
                "(keyword, \"database\", ?) -> T\n");
    return true;
  }
  if (cmd == "demo") {
    load_demo();
    return true;
  }
  if (cmd == "load" && args.size() == 2) {
    auto s = load_snapshot(args[1]);
    if (!s.ok()) {
      std::printf("error: %s\n", s.error().to_string().c_str());
    } else {
      store_ = std::move(s).value();
      std::printf("loaded %zu objects\n", store_.size());
    }
    return true;
  }
  if (cmd == "save" && args.size() == 2) {
    auto r = save_snapshot(store_, args[1]);
    std::printf("%s\n", r.ok() ? "saved" : r.error().to_string().c_str());
    return true;
  }
  if (cmd == "create") {
    cmd_create(args);
    return true;
  }
  if (cmd == "edit") {
    cmd_edit(args);
    return true;
  }
  if (cmd == "show") {
    cmd_show(args);
    return true;
  }
  if (cmd == "sets") {
    for (const auto& name : store_.set_names()) {
      auto members = store_.set_members(name);
      std::printf("  %-16s %zu members\n", name.c_str(),
                  members.ok() ? members.value().size() : 0);
    }
    return true;
  }
  if (cmd == "set") {
    cmd_set(args);
    return true;
  }
  if (cmd == "all" && args.size() == 2) {
    store_.create_set(args[1], store_.all_ids());
    std::printf("set %s = all %zu objects\n", args[1].c_str(), store_.size());
    return true;
  }
  if (cmd == "stats") {
    auto s = store_.stats();
    std::printf("objects %zu, tuples %zu, bytes %zu, sets %zu\n", s.objects,
                s.tuples, s.bytes, s.named_sets);
    return true;
  }
  if (cmd == "rewrite") {
    const std::string text = line.substr(line.find("rewrite") + 7);
    auto q = parse_query(text);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.error().to_string().c_str());
      return true;
    }
    RewriteStats stats;
    Query r = rewrite_query(q.value(), &stats);
    std::printf("%s\n(%u simplifications)\n", r.to_string().c_str(),
                stats.total());
    return true;
  }
  if (cmd == "explain") {
    const std::string text = line.substr(line.find("explain") + 7);
    auto q = parse_query(text);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.error().to_string().c_str());
      return true;
    }
    std::printf("%s", index::explain_query(q.value()).to_string().c_str());
    return true;
  }
  if ((cmd == "union" || cmd == "intersect" || cmd == "diff") &&
      args.size() == 4) {
    Result<ObjectId> r =
        cmd == "union"       ? set_union(store_, args[1], args[2], args[3])
        : cmd == "intersect" ? set_intersect(store_, args[1], args[2], args[3])
                             : set_difference(store_, args[1], args[2], args[3]);
    if (!r.ok()) {
      std::printf("error: %s\n", r.error().to_string().c_str());
    } else {
      auto members = store_.set_members(args[1]);
      std::printf("set %s = %zu members\n", args[1].c_str(),
                  members.ok() ? members.value().size() : 0);
    }
    return true;
  }
  if (cmd == "connect") {
    cmd_connect(args);
    return true;
  }
  if (cmd == "disconnect") {
    remote_.reset();
    std::printf("local mode\n");
    return true;
  }
  if (cmd == "gc") {
    GcReport report = collect_garbage(store_);
    std::printf("gc: %zu live, %zu collected, %zu bytes reclaimed\n",
                report.live, report.collected, report.bytes_reclaimed);
    return true;
  }
  if (cmd == "checkpoint") {
    if (args.size() < 2) {
      std::printf("usage: checkpoint ID [SPEC...]  (archives the current "
                  "state, then applies the SPEC tuples)\n");
      return true;
    }
    auto id = parse_id(args[1]);
    if (!id.ok()) {
      std::printf("error: %s\n", id.error().to_string().c_str());
      return true;
    }
    std::vector<Tuple> additions;
    for (std::size_t i = 2; i < args.size(); ++i) {
      auto t = parse_spec(args[i]);
      if (!t.ok()) {
        std::printf("error: %s\n", t.error().to_string().c_str());
        return true;
      }
      additions.push_back(std::move(t).value());
    }
    auto archive = checkpoint_version(store_, id.value(), [&](Object& obj) {
      for (Tuple& t : additions) obj.add(std::move(t));
    });
    if (!archive.ok()) {
      std::printf("error: %s\n", archive.error().to_string().c_str());
    } else {
      std::printf("archived as %s\n", archive.value().to_string().c_str());
    }
    return true;
  }
  if (cmd == "history" && args.size() == 2) {
    auto id = parse_id(args[1]);
    if (!id.ok()) {
      std::printf("error: %s\n", id.error().to_string().c_str());
      return true;
    }
    auto chain = version_history(store_, id.value());
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const Object* obj = store_.get(chain[i]);
      const Tuple* title = obj != nullptr ? obj->find("string", "Title") : nullptr;
      std::printf("  %s %-12s %s\n", i == 0 ? "live   " : "archive",
                  chain[i].to_string().c_str(),
                  title != nullptr ? title->data.as_string().c_str() : "");
    }
    return true;
  }
  run_query(line);
  return true;
}

const char* kDemoScript[] = {
    "demo",
    "sets",
    R"(S [ (pointer, "Cites", ?X) | ^^X ]* (keyword, "database", ?) (string, "Title", ->t) -> DB)",
    R"(S [ (pointer, "Cites", ?X) | ^^X ]* (number, "Year", [1970..1979]) -> Seventies)",
    "create s:Title=\"My reading notes\" n:Year=2026 k:notes p:Cites=0.4",
    "show 0.8",
    "edit 0.8 k:draft",
    "show 0.8",
    "all Everything",
    R"(Everything (keyword, "draft", ?) -> Drafts)",
    "rewrite S (keyword, \"k\", ?) (keyword, \"k\", ?) (?, ?, ?) -> T",
    "explain S [ (pointer, \"Cites\", ?X) | ^^X ]* (keyword, \"database\", ?) -> T",
    "checkpoint 0.8 s:Title=\"My reading notes, revised\"",
    "history 0.8",
    "stats",
    "gc",
    "stats",
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;

  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::printf("cannot open script %s\n", argv[1]);
      return 1;
    }
    std::string line;
    while (std::getline(file, line)) {
      if (!shell.execute(line)) break;
    }
    return 0;
  }

  if (!isatty(STDIN_FILENO)) {
    std::printf("hfsh (no terminal; running the built-in demo — pipe a script "
                "or run interactively for more)\n\n");
    for (const char* line : kDemoScript) {
      std::printf("hf> %s\n", line);
      shell.execute(line);
    }
    return 0;
  }

  std::printf("hfsh — HyperFile shell. 'help' for commands, 'demo' for data.\n");
  std::string line;
  for (;;) {
    std::printf("hf> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!shell.execute(line)) break;
  }
  return 0;
}
