// A software-engineering repository on HyperFile (the application domain
// the paper's interviews targeted: "hardware designers, programmers,
// hypertext users").
//
// Generates a synthetic program of ~200 modules with call edges, library
// dependencies, maintainers and version pointers, then answers the kinds of
// questions the paper's Section 2 motivates:
//   * which routines does module M transitively call?
//   * which of those are maintained by one of their own authors
//     (matching-variable queries, footnote 2)?
//   * modules last touched in a year range (numeric range patterns);
//   * previous-version chains (pointer history);
//   * index-accelerated keyword lookup (Section 2's indexing facilities).
#include <cstdio>

#include "common/rng.hpp"
#include "engine/local_engine.hpp"
#include "index/attribute_index.hpp"
#include "index/reachability_index.hpp"
#include "query/parser.hpp"

using namespace hyperfile;

namespace {

constexpr std::size_t kModules = 200;
const char* kAuthors[] = {"alice", "bob", "carol", "dave", "erin"};

}  // namespace

int main() {
  Rng rng(2026);
  SiteStore store(0);

  std::vector<ObjectId> mods;
  for (std::size_t i = 0; i < kModules; ++i) mods.push_back(store.allocate());

  for (std::size_t i = 0; i < kModules; ++i) {
    Object obj(mods[i]);
    obj.add(Tuple::string("Title", "module_" + std::to_string(i)));
    const char* author = kAuthors[rng.next_below(5)];
    obj.add(Tuple::string("Author", author));
    if (rng.next_bool(0.3)) {
      obj.add(Tuple::string("Author", kAuthors[rng.next_below(5)]));
    }
    // Maintainer: 60% one of the authors, else someone else entirely.
    obj.add(Tuple::string("Maintained by",
                          rng.next_bool(0.6) ? author : kAuthors[rng.next_below(5)]));
    obj.add(Tuple::number("Modified", rng.next_range(1985, 1991)));
    obj.add(Tuple::keyword(rng.next_bool(0.2) ? "unsafe" : "reviewed"));
    // Call edges: mostly forward (layered program), occasional back-edge.
    const int calls = 1 + static_cast<int>(rng.next_below(3));
    for (int c = 0; c < calls; ++c) {
      const std::size_t callee = rng.next_bool(0.9)
                                     ? i + 1 + rng.next_below(kModules - i)
                                     : rng.next_below(i + 1);
      obj.add(Tuple::pointer("Called Routine",
                             mods[callee < kModules ? callee : i]));
    }
    if (i > 0) {
      obj.add(Tuple::pointer("Previous Version", mods[i - 1]));
    }
    obj.add(Tuple::text("C Code", "/* module " + std::to_string(i) + " */"));
    store.put(std::move(obj));
  }
  std::vector<ObjectId> entry = {mods[0]};
  store.create_set("Entry", entry);

  LocalEngine engine(store);
  auto run = [&](const char* label, const std::string& text) {
    auto q = parse_query(text);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.error().to_string().c_str());
      return std::size_t{0};
    }
    auto r = engine.run(q.value());
    if (!r.ok()) {
      std::printf("query error: %s\n", r.error().to_string().c_str());
      return std::size_t{0};
    }
    std::printf("%-64s -> %zu modules (processed %llu)\n", label,
                r.value().ids.size(),
                static_cast<unsigned long long>(r.value().stats.processed));
    return r.value().ids.size();
  };

  std::printf("software repository: %zu modules, entry point module_0\n\n",
              kModules);

  run("transitive call closure from the entry point",
      R"(Entry [ (pointer, "Called Routine", ?X) | ^^X ]* (?, ?, ?) -> Reach)");

  run("  ... limited to call depth 3",
      R"(Entry [ (pointer, "Called Routine", ?X) | ^^X ]3 (?, ?, ?) -> Depth3)");

  run("  ... only modules flagged 'unsafe'",
      R"(Entry [ (pointer, "Called Routine", ?X) | ^^X ]* (keyword, "unsafe", ?) -> Unsafe)");

  run("reachable modules maintained by one of their own authors",
      R"(Reach (string, "Author", ?A) (string, "Maintained by", $A) -> SelfMaint)");

  run("reachable modules modified 1989-1991",
      R"(Reach (number, "Modified", [1989..1991]) -> Recent)");

  run("version history of module_50 (Previous Version chain)",
      "{0." + std::to_string(mods[50].seq) +
          R"(} [ (pointer, "Previous Version", ?X) | ^^X ]* (?, ?, ?) -> Hist)");

  // Indexes (Section 2's "facilities for indexing").
  index::AttributeIndex by_author(store, "string", "Author");
  index::ReachabilityIndex reach(store, "Called Routine");
  std::size_t reachable_by_bob = 0;
  for (const ObjectId& id : by_author.lookup(Value::string("bob"))) {
    if (id == mods[0] || reach.reaches(mods[0], id)) ++reachable_by_bob;
  }
  std::printf("%-64s -> %zu modules (via indexes, no traversal)\n",
              "bob's modules reachable from the entry point", reachable_by_bob);

  return 0;
}
