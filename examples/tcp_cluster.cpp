// A real multi-process-shaped deployment: three HyperFile SiteServers and a
// client, each on its own TCP endpoint on localhost (the 1991 prototype ran
// "distributed over a network of IBM PC/RTs connected by an ethernet;
// UDP and TCP/IP are used for inter-process communication").
//
// Everything crosses genuine sockets with length-prefixed wire frames — the
// same SiteServer code as the in-process cluster, different transport.
#include <cstdio>
#include <cstring>
#include <memory>

#include "dist/client.hpp"
#include "dist/site_server.hpp"
#include "net/transport.hpp"
#include "query/parser.hpp"
#include "workload/paper_workload.hpp"

using namespace hyperfile;

int main(int argc, char** argv) {
  constexpr std::size_t kSites = 3;
  constexpr SiteId kClient = kSites;

  // `tcp_cluster [threaded|epoll]` — same deployment, either socket backend.
  TcpBackend backend = TcpBackend::kThreaded;
  if (argc > 1) {
    auto parsed = parse_tcp_backend(argv[1]);
    if (!parsed.ok()) {
      std::printf("usage: tcp_cluster [threaded|epoll]\n");
      return 1;
    }
    backend = parsed.value();
  }

  // Bind everyone on ephemeral ports, then exchange the real addresses
  // (in a real deployment this is the static site configuration).
  std::vector<TcpPeer> zeros(kSites + 1, TcpPeer{"127.0.0.1", 0});
  std::vector<std::unique_ptr<SocketTransport>> nets;
  for (SiteId s = 0; s <= kSites; ++s) {
    auto net = make_socket_transport(backend, s, zeros);
    if (!net.ok()) {
      std::printf("cannot create TCP endpoint: %s\n",
                  net.error().to_string().c_str());
      return 1;
    }
    nets.push_back(std::move(net).value());
  }
  for (auto& net : nets) {
    for (SiteId peer = 0; peer <= kSites; ++peer) {
      net->update_peer(peer, {"127.0.0.1", nets[peer]->bound_port()});
    }
  }
  std::printf("transport: %s\n", to_string(backend));
  std::printf("TCP endpoints: ");
  for (SiteId s = 0; s <= kSites; ++s) {
    std::printf("%s%u@127.0.0.1:%u", s != 0 ? ", " : "", s,
                nets[s]->bound_port());
  }
  std::printf("\n");

  // Populate the paper workload across the three server stores.
  std::vector<std::unique_ptr<SiteServer>> servers;
  {
    std::vector<SiteStore> stores;
    for (SiteId s = 0; s < kSites; ++s) stores.emplace_back(s);
    std::vector<SiteStore*> ptrs;
    for (auto& st : stores) ptrs.push_back(&st);
    workload::populate_paper_workload(ptrs, workload::WorkloadConfig{});
    // Each site drains on two shared-memory workers (paper Section 6 inside
    // the distributed runtime); set to 0 for the serial event-loop drain.
    SiteServerOptions options;
    options.drain_workers = 2;
    for (SiteId s = 0; s < kSites; ++s) {
      servers.push_back(std::make_unique<SiteServer>(
          std::move(nets[s]), std::move(stores[s]), options));
    }
    std::printf("parallel drain: %zu workers per site\n",
                options.drain_workers);
  }
  for (auto& server : servers) server->start();

  Client client(std::move(nets[kClient]), /*default_server=*/0);

  auto run = [&](const char* label, const char* text) {
    auto q = parse_query(text);
    if (!q.ok()) return;
    auto r = client.run(q.value(), Duration(15'000'000));
    if (!r.ok()) {
      std::printf("%-58s -> error: %s\n", label, r.error().to_string().c_str());
      return;
    }
    std::printf("%-58s -> %zu results\n", label, r.value().ids.size());
  };

  run("tree closure + Rand10p=5, over real sockets",
      R"(Root [ (pointer, "Tree", ?X) | ^^X ]* (skey, "Rand10p", 5) -> T)");
  run("chain closure (every hop is a TCP message)",
      R"(Root [ (pointer, "Chain", ?X) | ^^X ]* (skey, "Rand10p", 5) -> T2)");
  run("random-pointer closure, 95% local",
      R"(Root [ (pointer, "Rand95", ?X) | ^^X ]* (skey, "Rand100p", [1..20]) -> T3)");

  for (auto& server : servers) server->stop();
  std::printf("servers stopped cleanly.\n");
  return 0;
}
