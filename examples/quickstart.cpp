// Quickstart: the paper's Section 2 walkthrough, runnable.
//
// Build a tiny software-engineering repository (the paper's sample object is
// "a module from a Software Engineering system"), then run the three
// queries Section 2 develops:
//   1. select by author;
//   2. follow Called-Routine pointers one level (⇑, written ^^);
//   3. bounded/unbounded iteration over the call graph;
//   4. the retrieval operator -> to pull titles into the application.
#include <cstdio>

#include "engine/local_engine.hpp"
#include "query/parser.hpp"

using namespace hyperfile;

namespace {

void show(const char* title, const Result<QueryResult>& r, const SiteStore& store) {
  std::printf("\n%s\n", title);
  if (!r.ok()) {
    std::printf("  error: %s\n", r.error().to_string().c_str());
    return;
  }
  for (const ObjectId& id : r.value().ids) {
    const Object* obj = store.get(id);
    const Tuple* t = obj != nullptr ? obj->find("string", "Title") : nullptr;
    std::printf("  %-12s %s\n", id.to_string().c_str(),
                t != nullptr ? t->data.as_string().c_str() : "<no title>");
  }
  for (const auto& v : r.value().values) {
    std::printf("  retrieved %s = %s\n",
                r.value().slot_names[v.slot].c_str(), v.value.to_string().c_str());
  }
}

}  // namespace

int main() {
  SiteStore store(0);

  // The paper's sample module, plus a small call graph:
  //   main -> sort -> compare,  main -> print,  sort -> libmath (Library)
  ObjectId libmath = store.allocate();
  ObjectId compare = store.allocate();
  ObjectId print = store.allocate();
  ObjectId sort = store.allocate();
  ObjectId main_mod = store.allocate();

  store.put(Object(libmath, {
                                Tuple::string("Title", "Math library"),
                                Tuple::string("Author", "Vendor Inc"),
                            }));
  store.put(Object(compare, {
                                Tuple::string("Title", "Compare routine"),
                                Tuple::string("Author", "Joe Programmer"),
                                Tuple::text("C Code", "int cmp(...) { ... }"),
                            }));
  store.put(Object(print, {
                              Tuple::string("Title", "Print routine"),
                              Tuple::string("Author", "Jane Hacker"),
                          }));
  store.put(Object(sort, {
                             Tuple::string("Title", "Main Program for Sort routine"),
                             Tuple::string("Author", "Joe Programmer"),
                             Tuple::text("Description", "<Arbitrary text description>"),
                             Tuple::text("C Code", "<Text of the Program>"),
                             Tuple::pointer("Called Routine", compare),
                             Tuple::pointer("Library", libmath),
                         }));
  store.put(Object(main_mod, {
                                 Tuple::string("Title", "main()"),
                                 Tuple::string("Author", "Joe Programmer"),
                                 Tuple::pointer("Called Routine", sort),
                                 Tuple::pointer("Called Routine", print),
                             }));

  std::vector<ObjectId> members = {main_mod};
  store.create_set("S", members);
  LocalEngine engine(store);

  auto run = [&](const char* title, const char* text) {
    auto q = parse_query(text);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.error().to_string().c_str());
      return;
    }
    std::printf("\nquery: %s", text);
    show(title, engine.run(q.value()), store);
  };

  run("— modules in S by Joe Programmer:",
      R"(S (string, "Author", "Joe Programmer") -> T)");

  run("— one level of Called Routine (keeping the caller):",
      R"(S (pointer, "Called Routine", ?X) ^^X (string, "Author", "Joe Programmer") -> T)");

  run("— transitive closure of the call graph:",
      R"(S [ (pointer, "Called Routine", ?X) | ^^X ]* (string, "Author", "Joe Programmer") -> T)");

  run("— follow ALL pointer categories (wildcard key), any author:",
      R"(S [ (pointer, ?, ?X) | ^^X ]* (string, "Author", ?) -> T)");

  run("— titles of Joe's modules via the retrieval operator:",
      R"(S [ (pointer, "Called Routine", ?X) | ^^X ]* (string, "Author", "Joe Programmer") (string, "Title", ->title) -> T)");

  // Result sets are sets: use T as the next query's starting point.
  run("— chained query over the previous result set T:",
      R"(T (string, "Title", /Sort/) -> U)");

  return 0;
}
