// A distributed digital library — the deployment the paper's introduction
// sketches: "old papers would be placed on an archival server, whereas it
// makes sense to keep work in progress on the author's workstation", with
// sharing across machines that is transparent to queries.
//
// Three sites: 0 = archival server, 1 and 2 = author workstations. Papers
// cite across sites; queries chase citations wherever they lead ("send the
// query, not the data"). Also demonstrates:
//   * the "lost in hyperspace" fix (Section 6): a query finds a document no
//     browsing path obviously leads to;
//   * the distributed-set optimisation for broad queries;
//   * partial results when a workstation is down.
#include <cstdio>

#include "common/rng.hpp"
#include "dist/cluster.hpp"
#include "query/parser.hpp"

using namespace hyperfile;

namespace {

struct Paper {
  const char* title;
  const char* author;
  int year;
  const char* keyword;
  SiteId site;  // 0 = archive, 1/2 = workstations
};

const Paper kPapers[] = {
    {"A Relational Model of Data", "Codd", 1970, "database", 0},
    {"The Entity-Relationship Model", "Chen", 1976, "database", 0},
    {"System R: An Overview", "Astrahan", 1976, "database", 0},
    {"Access Path Selection", "Selinger", 1979, "optimizer", 0},
    {"Principles of Transaction-Oriented Recovery", "Haerder", 1983, "recovery", 0},
    {"The Case for Shared Nothing", "Stonebraker", 1986, "distributed", 0},
    {"A Measure of Transaction Processing Power", "Anon", 1985, "benchmark", 0},
    {"R*: An Overview", "Williams", 1981, "distributed", 0},
    {"HyperFile draft: filtering queries", "Clifton", 1990, "hypertext", 1},
    {"HyperFile draft: distributed processing", "Clifton", 1991, "distributed", 1},
    {"Notes on weighted termination", "Clifton", 1991, "distributed", 1},
    {"Survey of hypertext systems (WIP)", "Garcia-Molina", 1990, "hypertext", 2},
    {"Massive Memory Machine notes", "Garcia-Molina", 1989, "memory", 2},
    {"Index structures for reachability", "Garcia-Molina", 1991, "hypertext", 2},
};

}  // namespace

int main() {
  Cluster cluster(3);
  Rng rng(7);

  constexpr std::size_t kN = std::size(kPapers);
  std::vector<ObjectId> ids;
  for (const Paper& p : kPapers) {
    ids.push_back(cluster.store(p.site).allocate());
  }
  for (std::size_t i = 0; i < kN; ++i) {
    const Paper& p = kPapers[i];
    Object obj(ids[i]);
    obj.add(Tuple::string("Title", p.title));
    obj.add(Tuple::string("Author", p.author));
    obj.add(Tuple::number("Year", p.year));
    obj.add(Tuple::keyword(p.keyword));
    obj.add(Tuple::text("Body", std::string(2048, '#')));  // the "document"
    // Citations: each paper cites up to 3 strictly older papers; every
    // database-flavored paper also cites Codd (everyone cites Codd).
    for (int c = 0; c < 3; ++c) {
      const std::size_t target = rng.next_below(kN);
      if (kPapers[target].year < p.year) {
        obj.add(Tuple::pointer("Cites", ids[target]));
      }
    }
    if (i != 0 && p.year >= 1976) {
      obj.add(Tuple::pointer("Cites", ids[0]));
    }
    // Citation sinks (papers citing nothing) need care: a closure loop's
    // body selection (pointer, "Cites", ?X) *filters*, so an object with no
    // Cites tuple dies inside the loop and never reaches the filters after
    // it (paper Section 3.1, the E function). Applications handle this by
    // ensuring every document carries the link category — here the root of
    // the citation DAG self-cites.
    if (i == 0) {
      obj.add(Tuple::pointer("Cites", ids[0]));
    }
    cluster.store(p.site).put(std::move(obj));
  }
  // The reading-list set on the archive server: the two 1991 drafts.
  std::vector<ObjectId> reading = {ids[9], ids[10]};
  cluster.store(0).create_set("Reading", reading);

  cluster.start();
  Client& client = cluster.client();

  auto run = [&](const char* label, const std::string& text) {
    auto q = parse_query(text);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.error().to_string().c_str());
      return;
    }
    auto r = client.run(q.value());
    std::printf("\n%s\n  query: %s\n", label, text.c_str());
    if (!r.ok()) {
      std::printf("  error: %s\n", r.error().to_string().c_str());
      return;
    }
    if (r.value().count_only) {
      std::printf("  -> %llu matching documents (left distributed)\n",
                  static_cast<unsigned long long>(r.value().total_count));
    }
    for (const auto& v : r.value().values) {
      std::printf("  -> %s\n", v.value.to_string().c_str());
    }
    if (r.value().values.empty() && !r.value().count_only) {
      std::printf("  -> %zu documents\n", r.value().ids.size());
    }
  };

  std::printf("digital library: %zu papers across archive + 2 workstations\n",
              kN);

  run("everything the reading list transitively cites (titles):",
      R"(Reading [ (pointer, "Cites", ?X) | ^^X ]* (string, "Title", ->t) -> Cited)");

  run("\"lost in hyperspace\": distributed-era papers in the citation web,",
      R"(Reading [ (pointer, "Cites", ?X) | ^^X ]* (keyword, "distributed", ?) (string, "Title", ->t) -> Dist)");

  run("1970s foundations reachable from today's drafts:",
      R"(Cited (number, "Year", [1970..1979]) (string, "Title", ->t) -> Seventies)");

  run("broad query, distributed-set mode (counts only):",
      R"(Reading [ (pointer, "Cites", ?X) | ^^X ]* (?, ?, ?) count -> Everything)");

  run("...then narrowed without the set ever moving:",
      R"(Everything (string, "Author", "Codd") (string, "Title", ->t) -> CoddPapers)");

  // Failure injection: workstation 2 goes away; the archive still answers.
  cluster.stop_site(2);
  run("workstation 2 is DOWN — same citation query, partial results:",
      R"(Reading [ (pointer, "Cites", ?X) | ^^X ]* (string, "Title", ->t) -> Partial)");

  auto net = cluster.network_stats();
  std::printf("\nnetwork: %llu messages, %llu bytes total (bodies never moved)\n",
              static_cast<unsigned long long>(net.messages_sent),
              static_cast<unsigned long long>(net.bytes_sent));
  cluster.stop();
  return 0;
}
