// hyperfiled — a standalone HyperFile site server over TCP.
//
// Together with `hfq` (the query client) this is the deployment shape the
// paper describes: one server per machine, clients anywhere, queries
// chasing pointers between servers.
//
//   usage:
//     hyperfiled init CONFIG DIR [objects]
//         Generate the paper's synthetic workload as per-site snapshots
//         (DIR/site_<i>.hfs), partitioned for the CONFIG's site count
//         (1, 3, or 9 sites).
//     hyperfiled serve SITE_ID CONFIG [SNAPSHOT]
//         Run site SITE_ID, listening on its CONFIG address, serving the
//         snapshot (or an empty store).
//
//   CONFIG: text file, one "host port" line per site (line i = site i).
//
//   demo (three shells + one for the client):
//     $ hyperfiled init cluster.conf /tmp/hf
//     $ hyperfiled serve 0 cluster.conf /tmp/hf/site_0.hfs
//     $ hyperfiled serve 1 cluster.conf /tmp/hf/site_1.hfs
//     $ hyperfiled serve 2 cluster.conf /tmp/hf/site_2.hfs
//     $ hfq cluster.conf 'Root [ (pointer, "Tree", ?X) | ^^X ]* (skey, "Rand10p", 5) -> T'
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "dist/site_server.hpp"
#include "net/transport.hpp"
#include "store/snapshot.hpp"
#include "workload/paper_workload.hpp"

using namespace hyperfile;

namespace {

Result<std::vector<TcpPeer>> read_config(const std::string& path) {
  std::ifstream file(path);
  if (!file) return make_error(Errc::kIo, "cannot open config " + path);
  std::vector<TcpPeer> peers;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    TcpPeer peer;
    int port = 0;
    if (!(is >> peer.host >> port)) {
      return make_error(Errc::kInvalidArgument, "bad config line: " + line);
    }
    peer.port = static_cast<std::uint16_t>(port);
    peers.push_back(std::move(peer));
  }
  if (peers.empty()) return make_error(Errc::kInvalidArgument, "empty config");
  return peers;
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

int cmd_init(const std::string& config_path, const std::string& dir,
             std::size_t objects) {
  auto peers = read_config(config_path);
  if (!peers.ok()) {
    std::fprintf(stderr, "%s\n", peers.error().to_string().c_str());
    return 1;
  }
  const std::size_t sites = peers.value().size();
  std::vector<SiteStore> stores;
  std::vector<SiteStore*> ptrs;
  for (std::size_t i = 0; i < sites; ++i) stores.emplace_back(static_cast<SiteId>(i));
  for (auto& s : stores) ptrs.push_back(&s);
  workload::WorkloadConfig cfg;
  cfg.num_objects = objects;
  workload::populate_paper_workload(ptrs, cfg);
  for (std::size_t i = 0; i < sites; ++i) {
    const std::string path = dir + "/site_" + std::to_string(i) + ".hfs";
    if (auto r = save_snapshot(stores[i], path); !r.ok()) {
      std::fprintf(stderr, "%s\n", r.error().to_string().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu objects)\n", path.c_str(), stores[i].size());
  }
  return 0;
}

int cmd_serve(SiteId site, const std::string& config_path,
              const std::string& snapshot_path, std::size_t workers,
              const std::string& metrics_json_path, const std::string& wal_dir,
              long checkpoint_secs, TcpBackend backend,
              long replicate_ring_ms) {
  auto peers = read_config(config_path);
  if (!peers.ok()) {
    std::fprintf(stderr, "%s\n", peers.error().to_string().c_str());
    return 1;
  }
  if (site >= peers.value().size()) {
    std::fprintf(stderr, "site %u not in config (%zu sites)\n", site,
                 peers.value().size());
    return 1;
  }

  SiteStore store(site);
  if (!snapshot_path.empty()) {
    auto loaded = load_snapshot(snapshot_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.error().to_string().c_str());
      return 1;
    }
    if (loaded.value().site() != site) {
      std::fprintf(stderr, "snapshot belongs to site %u, serving as %u\n",
                   loaded.value().site(), site);
      return 1;
    }
    store = std::move(loaded).value();
  }

  auto net = make_socket_transport(backend, site, peers.value());
  if (!net.ok()) {
    std::fprintf(stderr, "%s\n", net.error().to_string().c_str());
    return 1;
  }
  std::printf("hyperfiled: site %u on %s:%u (%s transport), %zu objects, sets:",
              site, peers.value()[site].host.c_str(), net.value()->bound_port(),
              to_string(backend), store.size());
  for (const auto& name : store.set_names()) std::printf(" %s", name.c_str());
  std::printf("\n");

  SiteServerOptions options;
  options.drain_workers = workers;
  if (workers > 0) std::printf("parallel drain: %zu workers\n", workers);
  // Durability (DESIGN.md §13): with --wal-dir every acknowledged mutation
  // is logged before the site answers for it, and the server recovers
  // checkpoint + WAL on startup — the snapshot argument only seeds a brand
  // new site.
  options.wal_dir = wal_dir;
  if (checkpoint_secs > 0) {
    options.checkpoint_interval = Duration(checkpoint_secs * 1'000'000);
  }
  if (!wal_dir.empty()) {
    std::printf("durable: wal-dir %s, checkpoint every %lds\n",
                wal_dir.c_str(), checkpoint_secs > 0 ? checkpoint_secs : 0);
  }
  // Hot-standby replication (DESIGN.md §18): every site ships its WAL to
  // the next site in the config's ring, so the same flag on all servers
  // yields one follower per primary and failover routing when one dies.
  if (replicate_ring_ms > 0) {
    if (wal_dir.empty()) {
      std::fprintf(stderr, "--replicate-ring needs --wal-dir (it ships the WAL)\n");
      return 1;
    }
    options.replication_interval = Duration(replicate_ring_ms * 1'000);
    const auto sites = static_cast<SiteId>(peers.value().size());
    for (SiteId s = 0; s < sites; ++s) {
      options.replica_assignment[s] = static_cast<SiteId>((s + 1) % sites);
    }
    std::printf("replicating: WAL to site %u every %ldms\n",
                static_cast<SiteId>((site + 1) % sites), replicate_ring_ms);
  }
  SiteServer server(std::move(net).value(), std::move(store), options);
  server.start();
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0) {
    ::usleep(200'000);
  }
  std::printf("\nshutting down...\n");
  server.stop();
  auto stats = server.engine_stats();
  std::printf("served: %llu objects processed, %llu results\n",
              static_cast<unsigned long long>(stats.processed),
              static_cast<unsigned long long>(stats.results));
  // Observability dump (DESIGN.md §12): every registry instrument this
  // process touched — drain latencies, retries, TTL events, net counters.
  std::printf("--- metrics ---\n%s", metrics().to_text().c_str());
  if (!metrics_json_path.empty()) {
    std::ofstream mout(metrics_json_path);
    if (mout) {
      mout << metrics().to_json() << "\n";
      std::printf("wrote metrics to %s\n", metrics_json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", metrics_json_path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::string(argv[1]) == "init") {
    const std::size_t objects =
        argc >= 5 ? static_cast<std::size_t>(std::stoul(argv[4])) : 270;
    return cmd_init(argv[2], argv[3], objects);
  }
  if (argc >= 4 && std::string(argv[1]) == "serve") {
    // Trailing options: --workers N enables the parallel site drain;
    // --metrics-json PATH writes the registry dump as JSON at shutdown.
    std::size_t workers = 0;
    std::string snapshot;
    std::string metrics_json;
    std::string wal_dir;
    long checkpoint_secs = 0;
    long replicate_ring_ms = 0;
    TcpBackend backend = TcpBackend::kThreaded;
    for (int i = 4; i < argc; ++i) {
      if (std::string(argv[i]) == "--workers" && i + 1 < argc) {
        char* end = nullptr;
        const char* value = argv[++i];
        workers = static_cast<std::size_t>(std::strtoul(value, &end, 10));
        if (end == value || *end != '\0') {
          std::fprintf(stderr, "--workers expects a number, got '%s'\n", value);
          return 1;
        }
      } else if (std::string(argv[i]) == "--metrics-json" && i + 1 < argc) {
        metrics_json = argv[++i];
      } else if (std::string(argv[i]) == "--wal-dir" && i + 1 < argc) {
        wal_dir = argv[++i];
      } else if (std::string(argv[i]) == "--transport" && i + 1 < argc) {
        auto parsed = parse_tcp_backend(argv[++i]);
        if (!parsed.ok()) {
          std::fprintf(stderr, "--transport expects threaded|epoll, got '%s'\n",
                       argv[i]);
          return 1;
        }
        backend = parsed.value();
      } else if (std::string(argv[i]) == "--checkpoint-interval" &&
                 i + 1 < argc) {
        char* end = nullptr;
        const char* value = argv[++i];
        checkpoint_secs = std::strtol(value, &end, 10);
        if (end == value || *end != '\0' || checkpoint_secs < 0) {
          std::fprintf(stderr,
                       "--checkpoint-interval expects seconds, got '%s'\n",
                       value);
          return 1;
        }
      } else if (std::string(argv[i]) == "--replicate-ring" && i + 1 < argc) {
        char* end = nullptr;
        const char* value = argv[++i];
        replicate_ring_ms = std::strtol(value, &end, 10);
        if (end == value || *end != '\0' || replicate_ring_ms <= 0) {
          std::fprintf(stderr,
                       "--replicate-ring expects milliseconds, got '%s'\n",
                       value);
          return 1;
        }
      } else if (snapshot.empty()) {
        snapshot = argv[i];
      }
    }
    return cmd_serve(static_cast<SiteId>(std::stoul(argv[2])), argv[3],
                     snapshot, workers, metrics_json, wal_dir,
                     checkpoint_secs, backend, replicate_ring_ms);
  }
  std::printf(
      "hyperfiled — standalone HyperFile TCP site server\n"
      "  hyperfiled init CONFIG DIR [objects]     generate workload snapshots\n"
      "  hyperfiled serve SITE_ID CONFIG [SNAP] [--workers N]\n"
      "                  [--metrics-json PATH] [--wal-dir DIR]\n"
      "                  [--checkpoint-interval SECS] [--transport NAME]\n"
      "                  [--replicate-ring MS]\n"
      "                                           run one site; --workers N\n"
      "                                           drains queries on N threads;\n"
      "                                           --metrics-json dumps the\n"
      "                                           metrics registry at shutdown;\n"
      "                                           --wal-dir makes the site\n"
      "                                           durable (WAL + recovery);\n"
      "                                           --checkpoint-interval takes\n"
      "                                           online checkpoints;\n"
      "                                           --transport threaded|epoll\n"
      "                                           picks the socket backend;\n"
      "                                           --replicate-ring MS ships\n"
      "                                           each site's WAL to the next\n"
      "                                           site every MS milliseconds\n"
      "                                           (hot standby, needs\n"
      "                                           --wal-dir)\n"
      "CONFIG: one \"host port\" line per site. Query with hfq.\n");
  return 0;
}
