// A small wiki on HyperFile — the hypertext application the paper's title
// promises, exercising the whole maintenance surface in one place:
//   * pages as objects with typed tuples (enforced by a TypeRegistry);
//   * wiki links as pointers, searched with closure queries;
//   * edits via version checkpoints ("previous version of a program" is the
//     paper's own example of a pointer property);
//   * set algebra combining query results;
//   * pruning + mark-sweep GC reclaiming dead history;
//   * a snapshot at the end, reloaded and re-queried.
#include <cstdio>

#include "engine/local_engine.hpp"
#include "model/type_registry.hpp"
#include "query/parser.hpp"
#include "store/gc.hpp"
#include "store/set_algebra.hpp"
#include "store/snapshot.hpp"
#include "store/versioning.hpp"

using namespace hyperfile;

namespace {

Result<QueryResult> run(LocalEngine& engine, const char* text) {
  auto q = parse_query(text);
  if (!q.ok()) return q.error();
  return engine.run(q.value());
}

void show(SiteStore& store, const char* label, const Result<QueryResult>& r) {
  std::printf("%s\n", label);
  if (!r.ok()) {
    std::printf("  error: %s\n", r.error().to_string().c_str());
    return;
  }
  for (const ObjectId& id : r.value().ids) {
    const Object* obj = store.get(id);
    const Tuple* t = obj != nullptr ? obj->find("string", "Title") : nullptr;
    std::printf("  %-12s %s\n", id.to_string().c_str(),
                t != nullptr ? t->data.as_string().c_str() : "?");
  }
}

}  // namespace

int main() {
  SiteStore store(0);
  // Wiki conventions, enforced at the write boundary.
  TypeRegistry types = TypeRegistry::with_builtins();
  types.register_type("WikiLink", DataConstraint::kPointer);
  types.set_reject_unknown(true);

  auto page = [&](const std::string& title, const std::string& topic) {
    Object obj(store.allocate());
    obj.add(Tuple::string("Title", title));
    obj.add(Tuple::keyword(topic));
    obj.add(Tuple::text("Body", "== " + title + " ==\n..."));
    auto id = store.put_validated(std::move(obj), types);
    if (!id.ok()) {
      std::printf("rejected: %s\n", id.error().to_string().c_str());
      std::exit(1);
    }
    return id.value();
  };
  auto link = [&](ObjectId from, ObjectId to) {
    (void)store.add_tuple(from, Tuple("WikiLink", "links", Value::pointer(to)));
  };

  ObjectId home = page("Home", "meta");
  ObjectId dist = page("Distributed Systems", "systems");
  ObjectId hyper = page("Hypertext", "docs");
  ObjectId query = page("Filtering Queries", "docs");
  ObjectId term = page("Termination Detection", "systems");
  link(home, dist);
  link(home, hyper);
  link(dist, term);
  link(hyper, query);
  link(query, dist);
  link(term, term);  // leaf pages self-link so closures test them (see DESIGN.md §7)
  std::vector<ObjectId> root = {home};
  store.create_set("Home", root);

  // A write that violates the conventions is rejected outright.
  Object bad(store.allocate());
  bad.add(Tuple("WikiLink", "links", Value::string("not a pointer")));
  std::printf("malformed page accepted? %s\n\n",
              store.put_validated(std::move(bad), types).ok() ? "YES (bug!)"
                                                              : "no (rejected)");

  LocalEngine engine(store);
  show(store, "everything reachable from Home:",
       run(engine, R"(Home [ (WikiLink, "links", ?X) | ^^X ]* (?, ?, ?) -> All)"));
  show(store, "\nsystems pages in the link web:",
       run(engine, R"(Home [ (WikiLink, "links", ?X) | ^^X ]* (keyword, "systems", ?) -> Sys)"));
  show(store, "\ndocs pages in the link web:",
       run(engine, R"(Home [ (WikiLink, "links", ?X) | ^^X ]* (keyword, "docs", ?) -> Docs)"));

  // Set algebra over the result sets.
  (void)set_union(store, "Interesting", "Sys", "Docs");
  show(store, "\nSys ∪ Docs:", run(engine, R"(Interesting (?, ?, ?) -> _)"));

  // Edit with history: five revisions of the Hypertext page.
  for (int rev = 1; rev <= 5; ++rev) {
    (void)checkpoint_version(store, hyper, [&](Object& obj) {
      obj.remove("text", "Body");
      obj.add(Tuple::text("Body", "revision " + std::to_string(rev)));
    });
  }
  std::printf("\nHypertext page history: %zu entries (live + archives)\n",
              version_history(store, hyper).size());

  // Keep two archives, prune the rest, then GC the store.
  const std::size_t pruned = prune_versions(store, hyper, 2);
  GcReport gc = collect_garbage(store);
  std::printf("pruned %zu archives; gc: %zu live, %zu collected, %zu bytes\n",
              pruned, gc.live, gc.collected, gc.bytes_reclaimed);

  // Persist and reload: same answers.
  const std::string path = "/tmp/hyperfile_wiki.hfs";
  if (auto r = save_snapshot(store, path); !r.ok()) {
    std::printf("snapshot failed: %s\n", r.error().to_string().c_str());
    return 1;
  }
  auto reloaded = load_snapshot(path);
  if (!reloaded.ok()) {
    std::printf("reload failed: %s\n", reloaded.error().to_string().c_str());
    return 1;
  }
  SiteStore store2 = std::move(reloaded).value();
  LocalEngine engine2(store2);
  show(store2, "\nafter snapshot reload, systems pages again:",
       run(engine2, R"(Home [ (WikiLink, "links", ?X) | ^^X ]* (keyword, "systems", ?) -> Sys2)"));
  std::remove(path.c_str());
  return 0;
}
