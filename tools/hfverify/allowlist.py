"""Single source of truth for HyperFile's sanctioned-primitive policy.

Both lint layers import from here:
  * tools/check_sync_discipline.py — the token-level ban on raw std sync
    primitives, ad-hoc atomics, and inline memory orders.
  * tools/hfverify — the whole-program role/blocking/lock-order analysis.

Keeping the data in one module means a newly sanctioned file or primitive is
added exactly once; a divergence between the two checkers is impossible by
construction (ISSUE 7 satellite).
"""

import os

# --------------------------------------------------------------------------
# Shared tree layout.
# --------------------------------------------------------------------------

SCAN_DIRS = ("src", "tests", "bench", "examples")
CPP_EXTENSIONS = (".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h")

# The hfverify fixture corpus intentionally contains seeded violations of
# every rule (including raw-primitive use); no checker scans it as part of
# the tree. `hfverify --self-test` is the only consumer.
FIXTURE_DIR = os.path.join("tests", "fixtures", "hfverify")
EXCLUDE_DIRS = {FIXTURE_DIR}

# --------------------------------------------------------------------------
# check_sync_discipline: raw-primitive bans and their sanctioned homes.
# --------------------------------------------------------------------------

# The one file allowed to name raw std sync primitives.
SYNC_ALLOWED = {os.path.join("src", "common", "sync.hpp")}

SYNC_BANNED_TOKENS = [
    r"std\s*::\s*mutex\b",
    r"std\s*::\s*timed_mutex\b",
    r"std\s*::\s*recursive_mutex\b",
    r"std\s*::\s*recursive_timed_mutex\b",
    r"std\s*::\s*shared_mutex\b",
    r"std\s*::\s*shared_timed_mutex\b",
    r"std\s*::\s*condition_variable\b",
    r"std\s*::\s*condition_variable_any\b",
    r"std\s*::\s*lock_guard\b",
    r"std\s*::\s*unique_lock\b",
    r"std\s*::\s*scoped_lock\b",
    r"std\s*::\s*shared_lock\b",
    r"#\s*include\s*<mutex>",
    r"#\s*include\s*<condition_variable>",
    r"#\s*include\s*<shared_mutex>",
]

# Non-bool std::atomic / std::atomic_flag / explicit memory orders: src/
# only, confined to the sanctioned homes below (DESIGN.md §12/§14).
ATOMIC_SCAN_DIR = "src"
ATOMIC_ALLOWED = {
    os.path.join("src", "common", "sync.hpp"),
    os.path.join("src", "common", "metrics.hpp"),
    # Log-level threshold: configuration read on every HF_DEBUG, not a
    # metric, and logging must not depend on the registry.
    os.path.join("src", "common", "logging.hpp"),
}
ATOMIC_BANNED_TOKENS = [
    r"std\s*::\s*atomic\b(?!\s*<\s*bool\s*>)",
    r"std\s*::\s*atomic_flag\b",
]
ORDER_BANNED_TOKENS = [
    r"std\s*::\s*memory_order\w*",
]

# --------------------------------------------------------------------------
# hfverify: thread-role analysis configuration (DESIGN.md §15).
# --------------------------------------------------------------------------

# Directories whose sources form the whole-program view.
ANALYSIS_DIRS = ("src",)

# Wire codec symmetry: the encode/decode pairs live here.
CODEC_FILE = os.path.join("src", "wire", "message.cpp")

# Handler-ordering rule: message handlers live here.
HANDLER_FILE = os.path.join("src", "dist", "site_server.cpp")

# The dedup predicate every sequenced-message handler must consult before
# its first side effect (PR 3's idempotence contract, DESIGN.md §11).
DEDUP_PREDICATE = "already_seen"

# Calls that mutate store / weight / protocol state. A handler reaching one
# of these before the dedup guard replays side effects on duplicated frames.
SIDE_EFFECT_CALLS = {
    # weight conservation (term/)
    "repay_weight", "borrow_weight", "repay", "borrow", "split",
    # distributed-set / D-S termination protocol
    "ds_on_computation_message", "ds_on_send", "ds_try_settle",
    "note_engagement", "maybe_finish",
    # engine seeding / drains
    "add_item", "seed_local_set", "seed_initial", "drain", "drain_and_flush",
    # routing / replies
    "route_remote", "flush_batches", "send_reply",
    # summary exchange (DESIGN.md §16): installing a gossiped record before
    # the dedup guard would let a duplicated frame re-run the install scan
    "install_summary",
    # store mutations
    "create_set", "put", "erase", "take", "bind_set", "merge_into",
    "apply_wal_record",
    # WAL replication (DESIGN.md §18): applying a shipped segment or catchup
    # snapshot before the dedup guard would replay redo records (or rewind
    # the shadow store) on duplicated frames
    "apply_segment", "apply_catchup", "apply_segment_records",
}

# Calls that are allowed inside the dedup guard's early-return block
# (pure accounting — they must not mutate protocol state).
DEDUP_GUARD_ALLOWED_CALLS = {"counter", "inc", "metrics", "add", "gauge",
                             "set", "observe", "histogram"}

# Lock-order rule: the sanctioned nesting edges, as
# ("Class::mutex_field", "Class::mutex_field") pairs. Everything not listed
# here must be a leaf (DESIGN.md §10 rule 2); hfverify --lock-order fails on
# any new edge or cycle, and cross-checks this table against the §10 prose.
SANCTIONED_LOCK_EDGES = {
    ("TcpNetwork::conn_mu_", "TcpNetwork::readers_mu_"),
}

# Field names whose type marks them as a lockable for the lock-order rule.
MUTEX_TYPE_IDS = {"Mutex"}
