"""hfverify — whole-program thread-confinement, blocking-call, and
protocol-invariant static analysis for HyperFile.

Usage:
  python3 tools/hfverify                    # all rules over the repo
  python3 tools/hfverify --rules codec,ordering
  python3 tools/hfverify --self-test        # run the fixture corpus
  python3 tools/hfverify --lock-order       # print the observed lock graph
  python3 tools/hfverify --list-waivers     # the waiver inventory
  python3 tools/hfverify --frontend libclang --compdb build/compile_commands.json

Exit status: 0 clean, 1 violations (or self-test failure), 2 usage error.
See tools/hfverify/README.md and DESIGN.md §15.
"""

import argparse
import os
import sys

if __package__ in (None, ""):  # `python3 tools/hfverify` execution
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from hfverify.__main__ import main  # type: ignore
    sys.exit(main())

from . import allowlist
from .model import Program
from .parse_cpp import parse_tree
from .rules import ALL_RULES, run_rule


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def _load_program(args) -> Program:
    if args.frontend == "libclang":
        from . import clang_frontend
        return clang_frontend.parse_tree(args.root, args.compdb)
    if args.frontend == "auto":
        # The text frontend is canonical; libclang is opt-in only.
        pass
    return parse_tree(args.root, allowlist.ANALYSIS_DIRS,
                      allowlist.CPP_EXTENSIONS,
                      exclude_dirs=allowlist.EXCLUDE_DIRS)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="hfverify", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=_repo_root(),
                        help="repository root (default: auto-detected)")
    parser.add_argument("--rules", default=",".join(ALL_RULES),
                        help=f"comma-separated subset of {ALL_RULES}")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "text", "libclang"),
                        help="auto/text use the built-in parser; libclang "
                             "needs python3-clang + a compile database")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json for --frontend libclang")
    parser.add_argument("--design", default=None,
                        help="DESIGN.md path for the lock-order cross-check "
                             "(default: <root>/DESIGN.md)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the tests/fixtures/hfverify corpus")
    parser.add_argument("--lock-order", action="store_true",
                        help="print the observed lock-nesting graph and run "
                             "only the lockorder rule")
    parser.add_argument("--list-waivers", action="store_true",
                        help="print every hfverify waiver in the tree")
    args = parser.parse_args(argv)

    if args.self_test:
        from .selftest import run_self_test
        return run_self_test(args.root)

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    if args.lock_order:
        rules = ["lockorder"]
    for r in rules:
        if r not in ALL_RULES:
            print(f"hfverify: unknown rule {r!r} (have {ALL_RULES})",
                  file=sys.stderr)
            return 2

    program = _load_program(args)

    if args.list_waivers:
        if not program.waivers:
            print("no waivers")
            return 0
        for w in sorted(program.waivers,
                        key=lambda w: (w.file, w.line)):
            reason = f": {w.reason}" if w.reason else ""
            print(f"{w.file}:{w.line}: allow-{w.kind}({w.tag}){reason}")
        print(f"{len(program.waivers)} waiver(s)")
        return 0

    if args.lock_order:
        from .rules.lockorder import observed_edges
        edges = sorted({(e, via) for e, _f, _l, via
                        in observed_edges(program)})
        print("observed lock-nesting edges:")
        if not edges:
            print("  (none — every lock is a leaf)")
        for (a, b), via in edges:
            print(f"  {a} -> {b}  (via {via})")

    design = args.design or os.path.join(args.root, "DESIGN.md")
    violations = []
    for rule in rules:
        kwargs = {}
        if rule == "lockorder":
            kwargs["design_path"] = design
        violations.extend(run_rule(rule, program, **kwargs))

    if violations:
        print(f"hfverify: {len(violations)} violation(s):")
        for v in violations:
            print("  " + v.format())
        return 1
    n_fn = sum(1 for f in program.functions.values() if f.has_definition)
    print(f"hfverify: clean ({', '.join(rules)}; {n_fn} functions, "
          f"{len(program.classes)} classes, {len(program.waivers)} "
          f"waiver(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
