"""Thread-confinement and blocking-call rule (DESIGN.md §15).

From every role-annotated function (the *roots*) walk the call graph:

  * role exclusivity — an `HF_EVENT_LOOP_ONLY` root must never reach an
    `HF_WORKER_ONLY` function (or vice versa), and an `HF_ANY_THREAD` entry
    point must not reach either confined role. Traversal stops at annotated
    functions: each is its own root, so blame lands on the function whose
    contract is actually violated.
  * state confinement — any function visited from a root of role R that
    names a field annotated with a different confined role is a violation.
  * blocking — no path from an `HF_EVENT_LOOP_ONLY` root may reach an
    `HF_BLOCKING` function or a direct blocking primitive (condvar wait via
    the annotated CondVar, `std::this_thread::sleep_*`, stdio/fstream I/O).

Waivers (`// hfverify: allow-role(...)` / `allow-blocking(...)`) cut the
edge or site they are attached to; `--list-waivers` prints the inventory.
"""

from typing import Dict, List, Optional, Set, Tuple

from ..callgraph import CallGraph
from ..model import (Function, Program, ROLE_ANY, ROLE_EVENT_LOOP,
                     ROLE_WORKER, Violation)

_CONFINED = (ROLE_EVENT_LOOP, ROLE_WORKER)


def _role_conflicts(root_role: str, target_role: str) -> bool:
    if target_role not in _CONFINED:
        return False
    if root_role == ROLE_ANY:
        return True
    return root_role != target_role


def _path_str(parent: Dict[str, Optional[str]], qname: str) -> str:
    chain = [qname]
    while parent.get(chain[-1]) is not None:
        chain.append(parent[chain[-1]])
    return " <- ".join(chain)


def _field_touches(program: Program, fn: Function,
                   root_role: str) -> List[Tuple[str, int, str]]:
    """(field_qname, line, field_role) for conflicting role-field accesses."""
    if fn.cls is None or not fn.body_tokens:
        return []
    role_fields: Dict[str, Tuple[str, str]] = {}
    for cls in program.base_chain(fn.cls):
        info = program.classes.get(cls)
        if info is None:
            continue
        for name, field in info.fields.items():
            if field.role in _CONFINED and name not in role_fields:
                role_fields[name] = (f"{cls}::{name}", field.role)
    if not role_fields:
        return []
    out = []
    seen: Set[Tuple[str, int]] = set()
    for tok in fn.body_tokens:
        entry = role_fields.get(tok.text)
        if entry is None:
            continue
        qname, frole = entry
        if not _role_conflicts(root_role, frole):
            continue
        if (qname, tok.line) in seen:
            continue
        seen.add((qname, tok.line))
        out.append((qname, tok.line, frole))
    return out


def check(program: Program) -> List[Violation]:
    graph = CallGraph(program)
    violations: List[Violation] = []
    reported: Set[Tuple] = set()

    def report(key: Tuple, file: str, line: int, message: str) -> None:
        if key in reported:
            return
        reported.add(key)
        violations.append(Violation("confinement", file, line, message))

    roots = [f for f in program.functions.values() if f.role is not None]

    # -- role exclusivity + state confinement -------------------------------
    for root in roots:
        if not root.has_definition:
            continue
        visited: Set[str] = set()
        parent: Dict[str, Optional[str]] = {root.qname: None}
        frontier = [root]
        while frontier:
            fn = frontier.pop()
            if fn.qname in visited:
                continue
            visited.add(fn.qname)
            for fq, line, frole in _field_touches(program, fn, root.role):
                if program.waiver_for("role", fn.file, line):
                    continue
                report(("field", root.qname, fq, fn.qname),
                       fn.file, line,
                       f"{fn.qname} (reached from {root.role}-role root "
                       f"{root.qname}) touches {frole}-confined field {fq}")
            for edge in graph.out_edges(fn):
                if not edge.confident:
                    continue
                if program.waiver_for("role", fn.file, edge.call.line):
                    continue
                callee = edge.callee
                if callee.role is not None:
                    if _role_conflicts(root.role, callee.role):
                        report(("role", root.qname, callee.qname),
                               fn.file, edge.call.line,
                               f"{root.role}-role root {root.qname} reaches "
                               f"{callee.role}-only {callee.qname} "
                               f"(path: {_path_str(parent, fn.qname)})")
                    continue  # annotated callees are their own roots
                if callee.qname not in visited:
                    parent.setdefault(callee.qname, fn.qname)
                    frontier.append(callee)

    # -- blocking reachable from the event loop -----------------------------
    for root in roots:
        if root.role != ROLE_EVENT_LOOP or not root.has_definition:
            continue
        visited = set()
        parent = {root.qname: None}
        frontier = [root]
        while frontier:
            fn = frontier.pop()
            if fn.qname in visited:
                continue
            visited.add(fn.qname)
            for kind, line in fn.blocking_ops:
                if program.waiver_for("blocking", fn.file, line):
                    continue
                report(("blockop", fn.qname, kind, line),
                       fn.file, line,
                       f"event-loop path reaches {kind} primitive in "
                       f"{fn.qname} (path: {_path_str(parent, fn.qname)})")
            for edge in graph.out_edges(fn):
                if program.waiver_for("blocking", fn.file, edge.call.line):
                    continue
                callee = edge.callee
                if callee.blocking:
                    report(("blocking", callee.qname, fn.qname),
                           fn.file, edge.call.line,
                           f"event-loop path calls HF_BLOCKING "
                           f"{callee.qname} "
                           f"(path: {_path_str(parent, fn.qname)})")
                    continue
                if callee.role == ROLE_WORKER:
                    continue  # already a role violation; don't descend
                if callee.qname not in visited:
                    parent.setdefault(callee.qname, fn.qname)
                    frontier.append(callee)

    violations.sort(key=lambda v: (v.file, v.line))
    return violations
