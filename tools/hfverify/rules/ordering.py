"""Handler-ordering rule: dedup dominates side effects.

PR 3's idempotence contract (DESIGN.md §11): every handler of a sequenced
computation message must consult the per-sender `already_seen(src, msg_seq)`
predicate *before* any protocol side effect — store mutation, weight
borrow/repay, Dijkstra–Scholten accounting, routing. A duplicated frame that
repays weight or acks before the dedup check breaks conservation exactly the
way the PR 3 bugs did.

Mechanically, for every function in `dist/site_server.cpp` that takes a
parameter of a sequenced message type (any struct with a `msg_seq` field):

  1. it must call the dedup predicate (`already_seen`),
  2. the call must be the condition of a positive `if` whose block returns
     (only pure accounting calls allowed inside — the early-return shape
     the rest of the file uses),
  3. no side-effect call may precede it in the body.

`// hfverify: allow-ordering(reason)` on the offending line waives a
finding; a handler that legitimately has no dedup (none today) would carry
the waiver on its first line.
"""

from typing import List, Optional, Set

from .. import cpp_lexer as lx
from ..model import Program, Violation


def _sequenced_types(program: Program) -> Set[str]:
    return {name for name, info in program.classes.items()
            if "msg_seq" in info.fields}


def check(program: Program, handler_file: Optional[str] = None,
          ) -> List[Violation]:
    from ..allowlist import (DEDUP_GUARD_ALLOWED_CALLS, DEDUP_PREDICATE,
                             HANDLER_FILE, SIDE_EFFECT_CALLS)
    handler_file = handler_file or HANDLER_FILE
    sequenced = _sequenced_types(program)
    violations: List[Violation] = []

    handlers = []
    for fn in program.functions.values():
        if fn.file != handler_file or not fn.has_definition:
            continue
        if any(set(ptype.split()) & sequenced for ptype, _ in fn.params):
            handlers.append(fn)

    for fn in sorted(handlers, key=lambda f: f.line):
        toks = fn.body_tokens
        dedup_calls = [c for c in fn.calls if c.name == DEDUP_PREDICATE]
        side_effects = [c for c in fn.calls if c.name in SIDE_EFFECT_CALLS]
        if not dedup_calls:
            if not program.waiver_for("ordering", fn.file, fn.line):
                violations.append(Violation(
                    "ordering", fn.file, fn.line,
                    f"{fn.qname} handles a sequenced message but never "
                    f"calls {DEDUP_PREDICATE}()"))
            continue
        dedup = dedup_calls[0]

        # Side effects sequenced before the dedup check.
        for call in side_effects:
            if call.token_index >= dedup.token_index:
                continue
            if program.waiver_for("ordering", fn.file, call.line):
                continue
            violations.append(Violation(
                "ordering", fn.file, call.line,
                f"{fn.qname} calls side effect {call.name}() before the "
                f"{DEDUP_PREDICATE}() dedup check (line {dedup.line})"))

        # The dedup call must be an `if (already_seen(...))` early return.
        guard_ok = False
        detail = "is not the condition of an `if`"
        for k in range(dedup.token_index - 1, -1, -1):
            t = toks[k]
            if t.text == "if" and k + 1 < len(toks) and \
                    toks[k + 1].text == "(":
                cond_close = lx.match_forward(toks, k + 1, "(", ")")
                if not (k + 1 < dedup.token_index < cond_close):
                    continue
                if toks[k + 2].text == "!":
                    detail = ("is negated — use the early-return shape "
                              "`if (already_seen(...)) { ...; return; }`")
                    break
                j = cond_close + 1
                if j < len(toks) and toks[j].text == "return":
                    # Unbraced early return: `if (already_seen(...)) return;`
                    k2 = j + 1
                    while k2 < len(toks) and toks[k2].text != ";":
                        k2 += 1
                    if not any(toks[x].text == "(" for x in range(j, k2)):
                        guard_ok = True
                    else:
                        detail = ("unbraced guard returns a call "
                                  "expression — brace it so the rule can "
                                  "vet the calls")
                    break
                if j >= len(toks) or toks[j].text != "{":
                    detail = "guard block is not braced"
                    break
                body_close = lx.match_forward(toks, j, "{", "}")
                block = toks[j + 1:body_close]
                if not any(x.text == "return" for x in block):
                    detail = "guard block does not return"
                    break
                bad = [x.text for i, x in enumerate(block)
                       if x.kind == lx.ID and i + 1 < len(block)
                       and block[i + 1].text == "("
                       and (i == 0 or block[i - 1].kind != lx.ID)
                       and x.text not in DEDUP_GUARD_ALLOWED_CALLS
                       and x.text not in ("if", "return", "static_cast")]
                if bad:
                    detail = (f"guard block calls non-accounting "
                              f"function(s) {sorted(set(bad))}")
                    break
                guard_ok = True
                break
            if t.text in (";", "{", "}"):
                break
        if not guard_ok and \
                not program.waiver_for("ordering", fn.file, dedup.line):
            violations.append(Violation(
                "ordering", fn.file, dedup.line,
                f"{fn.qname}: {DEDUP_PREDICATE}() result {detail}"))

    violations.sort(key=lambda v: (v.file, v.line))
    return violations
