"""Wire-codec symmetry rule.

Diffs the encode/decode pairs in `wire/message.cpp` structurally: both sides
of a pair are reduced to a normalized op sequence (`u8`, `varint`, `string`,
`bytes`, helper names with their `encode_`/`decode_` prefix stripped, and
`Loop[...]` nodes for repeated fields), and the sequences must be identical.
A field that is encoded but never decoded, decoded twice, or read in a
different order is a mismatch — the class of bug that silently corrupts
every message behind it on the wire.

What counts as a codec op: a call where the branch's Encoder/Decoder
variable is the receiver (`e.varint(x)`) or appears among the arguments
(`encode_qid(e, x)`). Calls that don't mention the coder variable (error
plumbing like `x.ok()`, nested `encode_message(env.message)` that runs on
its own buffer) are invisible, which is what keeps the envelope pair and
the Result-unwrapping idiom out of the diff.

Pairs checked: every `encode_X`/`decode_X` function pair in the file, plus
the per-tag branches of `encode_message` against the matching `case Tag::k…`
blocks of `decode_message`.
"""

import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import cpp_lexer as lx
from ..model import Function, Program, Violation

# Normalized op: ("op", name, line) or ("loop", [children], line)
Op = Union[Tuple[str, str, int], Tuple[str, list, int]]

_GENERIC_OBJ = {"", "query", "value", "object", "object_id"}
_COSMETIC_METHODS = {"clear", "take", "remaining", "ok", "error", "value",
                     "size", "reserve", "push_back", "empty", "data"}


def _normalize(callee: str) -> Optional[str]:
    for prefix in ("encode_", "decode_"):
        if callee.startswith(prefix):
            rest = callee[len(prefix):]
            return "obj" if rest in _GENERIC_OBJ else rest
    if callee in ("encode", "decode"):
        return "obj"
    return None


def _coder_vars(fn: Function) -> set:
    out = set()
    for ptype, pname in fn.params:
        if pname and ("Encoder" in ptype or "Decoder" in ptype):
            out.add(pname)
    toks = fn.body_tokens
    for i, t in enumerate(toks):
        if t.text in ("Encoder", "Decoder") and i + 1 < len(toks) and \
                toks[i + 1].kind == lx.ID:
            out.add(toks[i + 1].text)
    return out


def _extract_ops(toks: Sequence, coders: set) -> List[Op]:
    """Normalized op sequence for a token slice, with Loop nodes."""
    ops: List[Op] = []
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.text in ("for", "while") and i + 1 < n and \
                toks[i + 1].text == "(":
            close = lx.match_forward(toks, i + 1, "(", ")")
            # Header ops (e.g. `while (d.remaining())`) count before the body.
            ops.extend(_extract_ops(toks[i + 2:close], coders))
            j = close + 1
            if j < n and toks[j].text == "{":
                body_close = lx.match_forward(toks, j, "{", "}")
                children = _extract_ops(toks[j + 1:body_close], coders)
                if children:
                    ops.append(("loop", children, toks[i].line))
                i = body_close + 1
            else:
                # Single-statement loop body: to the next `;`.
                k = j
                while k < n and toks[k].text != ";":
                    if toks[k].text == "(":
                        k = lx.match_forward(toks, k, "(", ")")
                    k += 1
                children = _extract_ops(toks[j:k], coders)
                if children:
                    ops.append(("loop", children, toks[i].line))
                i = k + 1
            continue
        if t.kind == lx.ID and i + 1 < n and toks[i + 1].text == "(" and \
                t.text not in ("if", "switch", "return", "sizeof",
                               "static_cast"):
            close = lx.match_forward(toks, i + 1, "(", ")")
            prev = toks[i - 1] if i > 0 else None
            receiver = None
            if prev is not None and prev.text in (".", "->") and i >= 2 and \
                    toks[i - 2].kind == lx.ID:
                receiver = toks[i - 2].text
            if receiver in coders:
                if t.text not in _COSMETIC_METHODS:
                    ops.append(("op", t.text, t.line))
                i = close + 1
                continue
            arg_ids = {x.text for x in toks[i + 2:close] if x.kind == lx.ID}
            if arg_ids & coders:
                norm = _normalize(t.text)
                if norm is not None:
                    ops.append(("op", norm, t.line))
                    i = close + 1
                    continue
                # An unrecognized helper taking the coder (push_back of a
                # decoded value, logging, …) is transparent: fall through to
                # the recursion so nested `d.string()` ops still count.
            # Not a codec op; still recurse into args for nested codec calls.
            ops.extend(_extract_ops(toks[i + 2:close], coders))
            i = close + 1
            continue
        i += 1
    return ops


def _op_str(op: Op) -> str:
    if op[0] == "loop":
        return "loop[" + " ".join(_op_str(c) for c in op[1]) + "]"
    return op[1]


def _seq_str(ops: List[Op]) -> str:
    return " ".join(_op_str(o) for o in ops) or "(none)"


def _diff(tag: str, enc: List[Op], dec: List[Op], file: str, enc_line: int,
          violations: List[Violation]) -> None:
    for k in range(max(len(enc), len(dec))):
        a = enc[k] if k < len(enc) else None
        b = dec[k] if k < len(dec) else None
        if a is not None and b is not None and a[0] == b[0] == "loop":
            _diff(f"{tag} loop", a[1], b[1], file, a[2], violations)
            continue
        a_str = _op_str(a) if a is not None else "(end)"
        b_str = _op_str(b) if b is not None else "(end)"
        if a_str != b_str:
            line = a[2] if a is not None else (b[2] if b else enc_line)
            violations.append(Violation(
                "codec", file, line,
                f"{tag}: encode/decode diverge at field {k + 1}: "
                f"encoder writes `{a_str}` but decoder reads `{b_str}` "
                f"(encoded: {_seq_str(enc)}; decoded: {_seq_str(dec)})"))
            return


def _encode_branches(fn: Function) -> Dict[str, Tuple[List[Op], int]]:
    """Tag -> (ops, line) for each `if (get_if<T>)` branch of encode_message."""
    coders = _coder_vars(fn)
    toks = fn.body_tokens
    out: Dict[str, Tuple[List[Op], int]] = {}
    i = 0
    while i < len(toks):
        # A branch is `if (get_if<T>...) { ... }` or the trailing `else {}`.
        j = None
        if toks[i].text == "if" and i + 1 < len(toks) and \
                toks[i + 1].text == "(":
            j = lx.match_forward(toks, i + 1, "(", ")") + 1
        elif toks[i].text == "else" and i + 1 < len(toks) and \
                toks[i + 1].text == "{":
            j = i + 1
        if j is not None:
            if j < len(toks) and toks[j].text == "{":
                body_close = lx.match_forward(toks, j, "{", "}")
                ops = _extract_ops(toks[j + 1:body_close], coders)
                tag = None
                if ops and ops[0][0] == "op" and ops[0][1] == "u8":
                    # Tag byte: the branch's first codec op is
                    # `e.u8(...Tag::kX...)`; drop it from the field diff.
                    for k in range(j + 1, body_close - 1):
                        if toks[k].text == "Tag" and \
                                toks[k + 1].text == "::":
                            tag = toks[k + 2].text
                            break
                    if tag is not None:
                        ops = ops[1:]
                if tag is not None:
                    out[tag] = (ops, toks[i].line)
                i = body_close + 1
                continue
        i += 1
    return out


def _decode_cases(fn: Function) -> Dict[str, Tuple[List[Op], int]]:
    """Tag -> (ops, line) for each `case Tag::kX:` block of decode_message."""
    coders = _coder_vars(fn)
    toks = fn.body_tokens
    # Case boundaries: `case Tag :: kX :` at any depth inside the switch.
    marks: List[Tuple[int, str, int]] = []
    for i, t in enumerate(toks):
        if t.text == "case" and i + 3 < len(toks) and \
                toks[i + 1].text == "Tag" and toks[i + 2].text == "::":
            marks.append((i, toks[i + 3].text, t.line))
    out: Dict[str, Tuple[List[Op], int]] = {}
    for k, (start, tag, line) in enumerate(marks):
        stop = marks[k + 1][0] if k + 1 < len(marks) else len(toks)
        out[tag] = (_extract_ops(toks[start + 4:stop], coders), line)
    return out


def check(program: Program, codec_file: Optional[str] = None
          ) -> List[Violation]:
    from ..allowlist import CODEC_FILE
    codec_file = codec_file or CODEC_FILE
    fns = [f for f in program.functions.values()
           if f.file == codec_file and f.has_definition]
    violations: List[Violation] = []

    # -- free encode_X / decode_X pairs -------------------------------------
    by_name = {f.name: f for f in fns if f.cls is None}
    for name, enc_fn in sorted(by_name.items()):
        if not name.startswith("encode_") or name == "encode_message":
            continue
        dec_fn = by_name.get("decode_" + name[len("encode_"):])
        if dec_fn is None:
            continue
        enc_ops = _extract_ops(enc_fn.body_tokens, _coder_vars(enc_fn))
        dec_ops = _extract_ops(dec_fn.body_tokens, _coder_vars(dec_fn))
        _diff(f"{enc_fn.name}/{dec_fn.name}", enc_ops, dec_ops,
              codec_file, enc_fn.line, violations)

    # -- encode_message branches vs decode_message cases --------------------
    enc_msg = by_name.get("encode_message")
    dec_msg = by_name.get("decode_message")
    if enc_msg is not None and dec_msg is not None:
        branches = _encode_branches(enc_msg)
        cases = _decode_cases(dec_msg)
        for tag in sorted(set(branches) | set(cases)):
            if tag not in branches:
                violations.append(Violation(
                    "codec", codec_file, cases[tag][1],
                    f"decode_message handles {tag} but encode_message has "
                    f"no branch for it"))
                continue
            if tag not in cases:
                violations.append(Violation(
                    "codec", codec_file, branches[tag][1],
                    f"encode_message emits {tag} but decode_message has no "
                    f"case for it"))
                continue
            _diff(f"Tag::{tag}", branches[tag][0], cases[tag][0],
                  codec_file, branches[tag][1], violations)
    elif fns:
        violations.append(Violation(
            "codec", codec_file, 1,
            "could not locate encode_message/decode_message pair"))

    violations.sort(key=lambda v: (v.file, v.line))
    return violations
