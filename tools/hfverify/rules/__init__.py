"""hfverify rule families: confinement, codec, ordering, lockorder."""

from . import codec, confinement, lockorder, ordering  # noqa: F401

ALL_RULES = ("confinement", "codec", "ordering", "lockorder")


def run_rule(rule: str, program, **kwargs):
    if rule == "confinement":
        return confinement.check(program)
    if rule == "codec":
        return codec.check(program, **kwargs)
    if rule == "ordering":
        return ordering.check(program, **kwargs)
    if rule == "lockorder":
        return lockorder.check(program, **kwargs)
    raise ValueError(f"unknown rule {rule!r}")
