"""Lock acquisition-order extraction and checking (DESIGN.md §10).

Walks every function body tracking which `MutexLock` scopes are live, and
builds the observed lock-nesting graph:

  * acquiring B while A is held        → edge A → B
  * calling f() while A is held        → edge A → every lock f acquires
                                         transitively (fixpoint over the
                                         call graph, confident edges only)

Mutex identity is normalized to `Class::field`: the lock expression's final
field name is looked up in the enclosing class (and its bases), then in any
class with a Mutex-typed field of that name.

The check then enforces §10's rules mechanically: every observed edge must
be in the sanctioned table (`allowlist.SANCTIONED_LOCK_EDGES` — today just
`TcpNetwork::conn_mu_ → readers_mu_`), everything else is a leaf, and the
graph must be acyclic. The sanctioned table itself is cross-checked against
the DESIGN.md §10 capability table ("before `x_`"/"after `y_`" cells) so
code, tool, and document cannot drift apart silently.

`// hfverify: allow-lockorder(reason)` on the inner acquisition (or the
call made while holding) waives an edge.
"""

import os
import re
from typing import Dict, List, Optional, Set, Tuple

from ..callgraph import CallGraph
from ..model import Function, Program, Violation

Edge = Tuple[str, str]  # (outer mutex id, inner mutex id)


def _mutex_identity(program: Program, fn: Function,
                    expr_tokens: Tuple[str, ...], mutex_type_ids) -> str:
    ids = [t for t in expr_tokens if re.match(r"[A-Za-z_]\w*$", t)]
    if not ids:
        return "?"
    field = ids[-1]
    if fn.cls is not None:
        for cls in program.base_chain(fn.cls):
            info = program.classes.get(cls)
            if info and field in info.fields:
                return f"{cls}::{field}"
    owners = sorted(
        name for name, info in program.classes.items()
        if field in info.fields and
        info.fields[field].type_ids & set(mutex_type_ids))
    if owners:
        return f"{owners[0]}::{field}"
    return f"?::{field}"


def _direct_lock_ids(program: Program, fn: Function,
                     mutex_type_ids) -> Set[str]:
    return {_mutex_identity(program, fn, acq.expr_tokens, mutex_type_ids)
            for acq in fn.locks}


def _transitive_locks(program: Program, graph: CallGraph,
                      mutex_type_ids) -> Dict[str, Set[str]]:
    """qname -> every mutex id the function may acquire, transitively."""
    acquired: Dict[str, Set[str]] = {
        fn.qname: _direct_lock_ids(program, fn, mutex_type_ids)
        for fn in program.functions.values() if fn.has_definition}
    changed = True
    while changed:
        changed = False
        for qname, locks in acquired.items():
            fn = program.functions[qname]
            for edge in graph.out_edges(fn):
                if not edge.confident:
                    continue
                # A waived call site (e.g. a thread-entry lambda whose body
                # runs on the spawned thread) contributes nothing to the
                # caller's acquired set either.
                if program.waiver_for("lockorder", fn.file, edge.call.line):
                    continue
                callee_locks = acquired.get(edge.callee.qname)
                if callee_locks and not callee_locks <= locks:
                    locks |= callee_locks
                    changed = True
    return acquired


def observed_edges(program: Program, mutex_type_ids=None
                   ) -> List[Tuple[Edge, str, int, str]]:
    """[(edge, file, line, via)] — every nesting the tree exhibits."""
    from ..allowlist import MUTEX_TYPE_IDS
    mutex_type_ids = mutex_type_ids or MUTEX_TYPE_IDS
    graph = CallGraph(program)
    trans = _transitive_locks(program, graph, mutex_type_ids)
    out: List[Tuple[Edge, str, int, str]] = []
    for fn in program.functions.values():
        if not fn.has_definition or not fn.locks:
            continue
        # Reconstruct lock lifetimes: a lock dies when the brace depth drops
        # below its declaration depth.
        events: List[Tuple[int, str, object]] = []
        for acq in fn.locks:
            events.append((acq.token_index, "acq", acq))
        depth = 0
        for i, tok in enumerate(fn.body_tokens):
            if tok.text == "{":
                depth += 1
            elif tok.text == "}":
                depth -= 1
                events.append((i, "close", depth))
        calls_by_index = {c.token_index: c for c in fn.calls}
        for c in fn.calls:
            events.append((c.token_index, "call", c))
        events.sort(key=lambda e: (e[0], e[1] != "close"))
        held: List = []  # acquisitions, in order
        for _idx, kind, payload in events:
            if kind == "close":
                held = [a for a in held if a.depth <= payload]
            elif kind == "acq":
                inner = _mutex_identity(program, fn, payload.expr_tokens,
                                        mutex_type_ids)
                for outer_acq in held:
                    outer = _mutex_identity(program, fn,
                                            outer_acq.expr_tokens,
                                            mutex_type_ids)
                    out.append(((outer, inner), fn.file, payload.line,
                                fn.qname))
                held.append(payload)
            else:  # call while holding
                if not held:
                    continue
                # A waived call (thread-entry lambda, deferred closure) does
                # not actually run under the held lock: no edge at all.
                if program.waiver_for("lockorder", fn.file, payload.line):
                    continue
                for callee_set in _resolved_locksets(graph, trans, fn,
                                                     payload):
                    for inner in callee_set:
                        for outer_acq in held:
                            outer = _mutex_identity(
                                program, fn, outer_acq.expr_tokens,
                                mutex_type_ids)
                            out.append(((outer, inner), fn.file,
                                        payload.line,
                                        f"{fn.qname} -> {payload.name}()"))
    return out


def _resolved_locksets(graph: CallGraph, trans: Dict[str, Set[str]],
                       fn: Function, call) -> List[Set[str]]:
    out = []
    for edge in graph.out_edges(fn):
        if edge.call is call and edge.confident:
            locks = trans.get(edge.callee.qname)
            if locks:
                out.append(locks)
    return out


def parse_design_order_table(design_text: str) -> Set[Edge]:
    """Sanctioned pairs from the DESIGN.md §10 capability table."""
    pairs: Set[Edge] = set()
    for line in design_text.splitlines():
        if not line.strip().startswith("|"):
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) < 2:
            continue
        m_subject = re.match(r"`([\w:]+)`", cells[0])
        if not m_subject:
            continue
        subject = m_subject.group(1)
        owner = subject.rsplit("::", 1)[0] if "::" in subject else ""
        order_cell = cells[-1]
        for m in re.finditer(r"before\s+`(\w+)`", order_cell):
            pairs.add((subject, f"{owner}::{m.group(1)}"))
        for m in re.finditer(r"after\s+`(\w+)`", order_cell):
            pairs.add((f"{owner}::{m.group(1)}", subject))
    return pairs


def _find_cycles(edges: Set[Edge]) -> List[List[str]]:
    graph: Dict[str, Set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    cycles: List[List[str]] = []
    state: Dict[str, int] = {}
    stack: List[str] = []

    def dfs(node: str) -> None:
        state[node] = 1
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt, 0) == 1:
                cycles.append(stack[stack.index(nxt):] + [nxt])
            elif state.get(nxt, 0) == 0:
                dfs(nxt)
        stack.pop()
        state[node] = 2

    for node in sorted(graph):
        if state.get(node, 0) == 0:
            dfs(node)
    return cycles


def check(program: Program, sanctioned: Optional[Set[Edge]] = None,
          design_path: Optional[str] = None) -> List[Violation]:
    from ..allowlist import SANCTIONED_LOCK_EDGES
    if sanctioned is None:
        sanctioned = SANCTIONED_LOCK_EDGES
    violations: List[Violation] = []
    seen: Set[Tuple] = set()
    kept: Set[Edge] = set(sanctioned)
    for edge, file, line, via in observed_edges(program):
        if edge in sanctioned or edge[0] == edge[1]:
            # Same-identity "edges" come from distinct instances of the same
            # per-object mutex class (e.g. two WorkerQueue::mu during a
            # steal); cycle detection would misread them, and §10 already
            # forbids holding one while taking another via the leaf rule on
            # different identities.
            kept.add(edge)
            if edge[0] == edge[1] and edge not in sanctioned and \
                    not program.waiver_for("lockorder", file, line):
                violations.append(Violation(
                    "lockorder", file, line,
                    f"same mutex identity {edge[0]} acquired while held "
                    f"(via {via}) — self-deadlock unless the instances are "
                    f"provably distinct; waive with allow-lockorder if so"))
            continue
        if program.waiver_for("lockorder", file, line):
            kept.add(edge)
            continue
        key = (edge, file, line)
        if key in seen:
            continue
        seen.add(key)
        kept.add(edge)
        violations.append(Violation(
            "lockorder", file, line,
            f"unsanctioned lock nesting {edge[0]} -> {edge[1]} (via {via}); "
            f"DESIGN.md §10 sanctions only "
            f"{sorted(f'{a} -> {b}' for a, b in sanctioned)}"))

    for cycle in _find_cycles({e for e in kept if e[0] != e[1]}):
        violations.append(Violation(
            "lockorder", design_path or "(graph)", 0,
            "lock-order cycle: " + " -> ".join(cycle)))

    if design_path and os.path.isfile(design_path):
        with open(design_path, encoding="utf-8") as f:
            doc_pairs = parse_design_order_table(f.read())
        if doc_pairs != set(sanctioned):
            only_doc = sorted(f"{a} -> {b}" for a, b in
                              doc_pairs - set(sanctioned))
            only_tool = sorted(f"{a} -> {b}" for a, b in
                               set(sanctioned) - doc_pairs)
            violations.append(Violation(
                "lockorder", design_path, 0,
                f"DESIGN.md §10 order table drifted from the sanctioned "
                f"set: doc-only={only_doc} tool-only={only_tool}"))

    violations.sort(key=lambda v: (v.file, v.line))
    return violations
