"""hfverify: HyperFile's whole-program confinement / protocol analyzer.

Run as `python3 tools/hfverify`; see __main__.py for the CLI and
tools/hfverify/README.md for the rule reference.
"""
