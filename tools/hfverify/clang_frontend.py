"""Optional libclang frontend (experimental).

Where python3-clang + libclang are installed (the CI clang jobs; not the
default dev container), hfverify can build its `Program` from a real AST
instead of the text scanner: `--frontend libclang --compdb
build/compile_commands.json`. Role annotations are read from the
`annotate` attributes `HF_ROLE_ANNOTATION` emits under Clang, and call
edges from `CALL_EXPR`/`MEMBER_REF_EXPR` cursors, so overload resolution
and receiver typing are exact.

The text frontend stays canonical: it needs no toolchain, parses headers
the compile database never compiles standalone, and is what the fixture
corpus and CI gates run. This module is import-gated — loading it without
libclang raises a clear error instead of breaking the default path. The
codec and ordering rules are syntactic and always use the text parser's
token model; only confinement and lockorder benefit from AST accuracy,
so those are what CI exercises advisorily with this frontend.
"""

import json
import os
from typing import Optional

from .model import (Call, ClassInfo, Field, Function, Program, ROLE_MACROS,
                    Violation)

_ANNOTATION_TO_ROLE = {
    "hf_event_loop_only": "event_loop",
    "hf_worker_only": "worker",
    "hf_any_thread": "any",
}


def _require_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError as exc:  # pragma: no cover - environment dependent
        raise SystemExit(
            "hfverify: --frontend libclang needs the python3-clang package "
            "and libclang; install them (apt-get install python3-clang "
            "libclang-dev) or use the default text frontend") from exc
    return cindex


def parse_tree(root: str, compdb_path: Optional[str]) -> Program:
    cindex = _require_cindex()
    if compdb_path is None:
        compdb_path = os.path.join(root, "build", "compile_commands.json")
    if not os.path.isfile(compdb_path):
        raise SystemExit(f"hfverify: compile database {compdb_path} not "
                         "found (configure with "
                         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    with open(compdb_path, encoding="utf-8") as f:
        entries = json.load(f)
    index = cindex.Index.create()
    program = Program()
    seen_files = set()
    for entry in entries:
        path = os.path.normpath(os.path.join(entry.get("directory", root),
                                             entry["file"]))
        rel = os.path.relpath(path, root)
        if not rel.startswith("src") or rel in seen_files:
            continue
        seen_files.add(rel)
        args = [a for a in entry.get("command", "").split()[1:]
                if not a.endswith(".cpp") and a not in ("-c", "-o")]
        # Drop the object-file operand `-o` pointed at.
        cleaned = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a == "-o":
                skip = True
                continue
            cleaned.append(a)
        try:
            tu = index.parse(path, args=cleaned)
        except cindex.TranslationUnitLoadError:
            continue
        _walk(cindex, program, root, tu.cursor)
    return program


def _role_of(cindex, cursor):
    role = None
    blocking = False
    for child in cursor.get_children():
        if child.kind == cindex.CursorKind.ANNOTATE_ATTR:
            if child.spelling in _ANNOTATION_TO_ROLE:
                role = _ANNOTATION_TO_ROLE[child.spelling]
            elif child.spelling == "hf_blocking":
                blocking = True
    return role, blocking


def _walk(cindex, program: Program, root: str, cursor, cls=None) -> None:
    K = cindex.CursorKind
    for child in cursor.get_children():
        loc = child.location
        if loc.file is None:
            continue
        rel = os.path.relpath(str(loc.file), root)
        if rel.startswith(".."):
            continue
        if child.kind in (K.NAMESPACE, K.UNEXPOSED_DECL):
            _walk(cindex, program, root, child, cls)
        elif child.kind in (K.CLASS_DECL, K.STRUCT_DECL) and \
                child.is_definition():
            info = program.classes.setdefault(child.spelling,
                                              ClassInfo(name=child.spelling))
            info.file, info.line = rel, loc.line
            for sub in child.get_children():
                if sub.kind == K.CXX_BASE_SPECIFIER:
                    base = sub.type.spelling.split("::")[-1].split("<")[0]
                    if base not in info.bases:
                        info.bases.append(base)
                elif sub.kind == K.FIELD_DECL:
                    role, _ = _role_of(cindex, sub)
                    type_ids = {t for t in
                                sub.type.spelling.replace("<", " ")
                                .replace(">", " ").replace("::", " ")
                                .replace("*", " ").replace("&", " ").split()}
                    info.fields[sub.spelling] = Field(
                        name=sub.spelling, cls=child.spelling,
                        type_ids=type_ids, role=role, file=rel,
                        line=sub.location.line)
            _walk(cindex, program, root, child, child.spelling)
        elif child.kind in (K.CXX_METHOD, K.FUNCTION_DECL, K.CONSTRUCTOR,
                            K.DESTRUCTOR):
            name = child.spelling
            owner = cls
            sem = child.semantic_parent
            if sem is not None and sem.kind in (K.CLASS_DECL, K.STRUCT_DECL):
                owner = sem.spelling
            qname = f"{owner}::{name}" if owner else name
            role, blocking = _role_of(cindex, child)
            fn = Function(qname=qname, name=name, cls=owner, file=rel,
                          line=loc.line, role=role, blocking=blocking,
                          params=[(p.type.spelling, p.spelling)
                                  for p in child.get_arguments()],
                          has_definition=child.is_definition())
            if child.is_definition():
                _collect_calls(cindex, fn, child)
            program.add_function(fn)


def _collect_calls(cindex, fn: Function, cursor) -> None:
    K = cindex.CursorKind
    idx = 0
    for node in cursor.walk_preorder():
        if node.kind != K.CALL_EXPR or not node.spelling:
            continue
        ref = node.referenced
        qualifier = None
        if ref is not None and ref.semantic_parent is not None and \
                ref.semantic_parent.kind in (K.CLASS_DECL, K.STRUCT_DECL):
            qualifier = ref.semantic_parent.spelling
        idx += 1
        fn.calls.append(Call(name=node.spelling, qualifier=qualifier,
                             receiver=None, line=node.location.line,
                             token_index=idx))
