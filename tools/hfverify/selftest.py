"""Fixture-driven self-test: the analyzer lints itself before the tree.

Every file under tests/fixtures/hfverify/ is an isolated mini translation
unit carrying directives in comments:

  // HFVERIFY-RULE: confinement            which rule to run
  // HFVERIFY-EXPECT: <substring>          one per expected violation
  // HFVERIFY-ALLOW-EDGE: A::x -> B::y     lockorder: sanctioned pair(s)

A fixture passes when the rule reports exactly len(EXPECT) violations and
every EXPECT substring matches at least one of them. Known-good fixtures
carry RULE but no EXPECT and must come back clean. A rule that silently
stopped matching — or started over-matching — fails the corpus, same deal
as check_sync_discipline.py's self-test.
"""

import os
import re
from typing import List

from .allowlist import FIXTURE_DIR
from .model import Program
from .parse_cpp import parse_file
from .rules import ALL_RULES, run_rule

_RULE_RE = re.compile(r"HFVERIFY-RULE:\s*(\S+)")
_EXPECT_RE = re.compile(r"HFVERIFY-EXPECT:\s*(.+?)\s*$", re.MULTILINE)
_EDGE_RE = re.compile(
    r"HFVERIFY-ALLOW-EDGE:\s*(\S+)\s*->\s*(\S+)")


def run_self_test(root: str) -> int:
    fixture_dir = os.path.join(root, FIXTURE_DIR)
    if not os.path.isdir(fixture_dir):
        print(f"hfverify self-test: fixture dir {fixture_dir} missing")
        return 1
    names = sorted(n for n in os.listdir(fixture_dir)
                   if n.endswith((".cpp", ".hpp")))
    failures = 0
    ran = 0
    per_rule = {r: 0 for r in ALL_RULES}
    for name in names:
        rel = os.path.join(FIXTURE_DIR, name)
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = f.read()
        m = _RULE_RE.search(text)
        if not m:
            print(f"self-test FAIL: {name}: no HFVERIFY-RULE directive")
            failures += 1
            continue
        rule = m.group(1)
        if rule not in ALL_RULES:
            print(f"self-test FAIL: {name}: unknown rule {rule!r}")
            failures += 1
            continue
        expects: List[str] = _EXPECT_RE.findall(text)
        program = Program()
        parse_file(program, rel, text)
        kwargs = {}
        if rule == "codec":
            kwargs["codec_file"] = rel
        elif rule == "ordering":
            kwargs["handler_file"] = rel
        elif rule == "lockorder":
            edges = {(a, b) for a, b in _EDGE_RE.findall(text)}
            kwargs["sanctioned"] = edges
        violations = run_rule(rule, program, **kwargs)
        got = [v.format() for v in violations]
        problems = []
        if len(got) != len(expects):
            problems.append(
                f"expected {len(expects)} violation(s), got {len(got)}")
        for want in expects:
            if not any(want in g for g in got):
                problems.append(f"no violation matching {want!r}")
        if problems:
            failures += 1
            print(f"self-test FAIL: {name} ({rule}):")
            for p in problems:
                print(f"  {p}")
            for g in got:
                print(f"  reported: {g}")
        ran += 1
        per_rule[rule] += 1
    for rule in ALL_RULES:
        if per_rule[rule] < 3:
            failures += 1
            print(f"self-test FAIL: rule {rule!r} has only "
                  f"{per_rule[rule]} fixture(s); the corpus requires >= 3 "
                  f"per rule family")
    if failures:
        print(f"hfverify self-test: {failures} failure(s) across "
              f"{ran} fixture(s)")
        return 1
    print(f"hfverify self-test: {ran} fixtures pass "
          f"({', '.join(f'{r}={per_rule[r]}' for r in ALL_RULES)})")
    return 0
