"""Call-graph construction over the parsed `Program`.

Resolution is name-based with receiver-type refinement:

  * `Cls::name(...)`        → exact, plus overrides in derived classes.
  * `obj.name(...)` /
    `obj->name(...)`        → `obj` is looked up as a field of the calling
                              function's class (then of any class); the
                              field's type tokens pick the candidate classes,
                              widened to derived classes for virtual dispatch.
  * bare `name(...)`        → a method of the calling class (or its bases)
                              if one exists, else free functions of that
                              name, else every function named `name`
                              (low-confidence fallback — callers can ask to
                              exclude those).

Unresolvable calls (std::, externals, opaque std::function invocations) drop
out of the graph; the confinement rule separately accounts for the blocking
primitives the parser records directly (sleep, file I/O).
"""

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .model import Call, Function, Program


class Edge:
    __slots__ = ("caller", "callee", "call", "confident")

    def __init__(self, caller: Function, callee: Function, call: Call,
                 confident: bool) -> None:
        self.caller = caller
        self.callee = callee
        self.call = call
        self.confident = confident


class CallGraph:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.edges: Dict[str, List[Edge]] = {}
        self._build()

    def out_edges(self, fn: Function) -> List[Edge]:
        return self.edges.get(fn.qname, [])

    def _build(self) -> None:
        for fn in list(self.program.functions.values()):
            if not fn.has_definition:
                continue
            out: List[Edge] = []
            for call in fn.calls:
                for callee, confident in self._resolve(fn, call):
                    if callee.qname == fn.qname:
                        continue
                    out.append(Edge(fn, callee, call, confident))
            self.edges[fn.qname] = out

    # -- resolution ---------------------------------------------------------
    def _methods_named(self, classes: Iterable[str],
                       name: str) -> List[Function]:
        out = []
        for cls in classes:
            fn = self.program.functions.get(f"{cls}::{name}")
            if fn is not None:
                out.append(fn)
        return out

    def _with_derived(self, cls: str) -> Set[str]:
        return {cls} | self.program.derived_of(cls)

    def _field_type_classes(self, cls: Optional[str],
                            field_name: str) -> Set[str]:
        """Classes named by the type of `field_name`, looked up first in
        `cls` and its bases, then in any class having such a field."""
        candidates: Set[str] = set()
        scopes: List[str] = self.program.base_chain(cls) if cls else []
        for scope in scopes:
            info = self.program.classes.get(scope)
            if info and field_name in info.fields:
                candidates |= info.fields[field_name].type_ids
                break
        if not candidates:
            for info in self.program.classes.values():
                if field_name in info.fields:
                    candidates |= info.fields[field_name].type_ids
        return {c for c in candidates if c in self.program.classes}

    def _resolve(self, fn: Function,
                 call: Call) -> List[Tuple[Function, bool]]:
        name = call.name
        prog = self.program
        if call.qualifier is not None:
            if call.qualifier in ("std", "this_thread", "chrono", "::"):
                return []
            targets = self._methods_named(
                self._with_derived(call.qualifier), name)
            return [(t, True) for t in targets]
        if call.receiver is not None:
            classes: Set[str] = set()
            if call.receiver != "<expr>":
                for c in self._field_type_classes(fn.cls, call.receiver):
                    classes |= self._with_derived(c)
            if classes:
                targets = self._methods_named(classes, name)
                if targets:
                    return [(t, True) for t in targets]
            # Unknown receiver type: any method of this name, low confidence.
            targets = [f for f in prog.by_name.get(name, ())
                       if f.cls is not None]
            return [(t, False) for t in targets]
        # Bare call: own class (and bases) first.
        if fn.cls is not None:
            targets = self._methods_named(prog.base_chain(fn.cls), name)
            if targets:
                return [(targets[0], True)]
        frees = [f for f in prog.by_name.get(name, ()) if f.cls is None]
        if frees:
            return [(f, True) for f in frees]
        return [(f, False) for f in prog.by_name.get(name, ())]
