"""A small C++ tokenizer for hfverify's text frontend.

Produces identifier / number / string / punctuation tokens with line numbers,
and collects comments separately (waiver comments and fixture directives live
in comments, so they must survive lexing). This is not a conforming C++ lexer
— it only needs to be right for the constructs the rules look at: names,
parens, braces, and call syntax. Preprocessor lines other than the HF_* role
macros are skipped.
"""

import re
from dataclasses import dataclass
from typing import List, Tuple

ID = "id"
NUM = "num"
STR = "str"
CHR = "chr"
PUNCT = "punct"

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"(?:0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'xXbBuUlLeE.+-]*)")
# Longest-first multi-char operators the parser cares about.
_PUNCTS = ("->*", "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=",
           "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
           "^=", "++", "--")


@dataclass
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # compact in rule debug output
        return f"{self.text!r}@{self.line}"


def lex(text: str) -> Tuple[List[Token], List[Tuple[int, str]]]:
    """Tokenize `text`; returns (tokens, comments) where comments is a list
    of (line, comment-text) with the // or /* */ delimiters stripped."""
    tokens: List[Token] = []
    comments: List[Tuple[int, str]] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                end = text.find("\n", i)
                if end == -1:
                    end = n
                comments.append((line, text[i + 2:end].strip()))
                i = end
                continue
            if text[i + 1] == "*":
                end = text.find("*/", i + 2)
                if end == -1:
                    end = n
                body = text[i + 2:end]
                comments.append((line, body.strip()))
                line += body.count("\n")
                i = end + 2
                continue
        if c == "#":
            # Preprocessor directive: skip to end of (possibly continued) line.
            while i < n:
                end = text.find("\n", i)
                if end == -1:
                    i = n
                    break
                if text[end - 1] == "\\":
                    line += 1
                    i = end + 1
                    continue
                i = end
                break
            continue
        if c == "R" and text.startswith('R"', i):
            # Raw string literal R"delim(...)delim".
            m = re.match(r'R"([^()\s\\]*)\(', text[i:])
            if m:
                closer = ")" + m.group(1) + '"'
                end = text.find(closer, i + m.end())
                if end == -1:
                    end = n
                lit = text[i:end + len(closer)]
                tokens.append(Token(STR, lit, line))
                line += lit.count("\n")
                i = end + len(closer)
                continue
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            tokens.append(Token(STR, text[i:j + 1], line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            tokens.append(Token(CHR, text[i:j + 1], line))
            i = j + 1
            continue
        m = _ID_RE.match(text, i)
        if m:
            tokens.append(Token(ID, m.group(0), line))
            i = m.end()
            continue
        if c.isdigit():
            m = _NUM_RE.match(text, i)
            tokens.append(Token(NUM, m.group(0), line))
            i = m.end()
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token(PUNCT, p, line))
                i += len(p)
                break
        else:
            tokens.append(Token(PUNCT, c, line))
            i += 1
    return tokens, comments


def match_forward(tokens: List[Token], start: int, open_text: str,
                  close_text: str) -> int:
    """Index of the token closing the bracket opened at `start` (which must
    be `open_text`), or len(tokens) if unbalanced."""
    depth = 0
    for i in range(start, len(tokens)):
        t = tokens[i].text
        if t == open_text:
            depth += 1
        elif t == close_text:
            depth -= 1
            if depth == 0:
                return i
    return len(tokens)
