"""Data model shared by hfverify's frontends and rules.

A frontend (text or libclang) parses the tree into a `Program`; the rules in
`hfverify.rules` only ever see this model, so they are frontend-agnostic.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

# Role annotation macro names (see src/common/sync.hpp and DESIGN.md §15).
ROLE_EVENT_LOOP = "event_loop"
ROLE_WORKER = "worker"
ROLE_ANY = "any"

ROLE_MACROS = {
    "HF_EVENT_LOOP_ONLY": ROLE_EVENT_LOOP,
    "HF_WORKER_ONLY": ROLE_WORKER,
    "HF_ANY_THREAD": ROLE_ANY,
}
BLOCKING_MACRO = "HF_BLOCKING"


@dataclass
class Call:
    """One call site inside a function body."""
    name: str                      # callee token, e.g. "stats" or "put"
    qualifier: Optional[str]       # "Class" for Class::name(...) calls
    receiver: Optional[str]        # "obj" for obj.name(...) / obj->name(...)
    line: int
    token_index: int               # position in the owning body's token list


@dataclass
class LockAcquisition:
    """A `MutexLock lock(expr);` site inside a function body."""
    expr_tokens: Tuple[str, ...]   # e.g. ("stats_mu_",) or ("q", ".", "mu")
    line: int
    depth: int                     # brace depth inside the body at the site
    token_index: int


@dataclass
class Function:
    qname: str                     # "SiteServer::handle_deref" or "free_fn"
    name: str                      # unqualified
    cls: Optional[str]             # enclosing/owning class, if any
    file: str
    line: int
    role: Optional[str] = None     # ROLE_* or None
    blocking: bool = False         # carries HF_BLOCKING
    params: List[Tuple[str, str]] = field(default_factory=list)  # (type, name)
    body_tokens: List = field(default_factory=list)              # lexer Tokens
    calls: List[Call] = field(default_factory=list)
    locks: List[LockAcquisition] = field(default_factory=list)
    # Blocking primitives used directly in the body: (kind, line) where kind
    # is "condvar-wait", "sleep", or "file-io".
    blocking_ops: List[Tuple[str, int]] = field(default_factory=list)
    has_definition: bool = False


@dataclass
class Field:
    name: str
    cls: str
    type_ids: Set[str] = field(default_factory=set)
    role: Optional[str] = None
    file: str = ""
    line: int = 0


@dataclass
class ClassInfo:
    name: str
    bases: List[str] = field(default_factory=list)
    fields: Dict[str, Field] = field(default_factory=dict)
    file: str = ""
    line: int = 0


@dataclass
class Waiver:
    """A `// hfverify: allow-<kind>(tag): reason` comment.

    Applies to the code on its own line, or — when the comment stands alone
    on a line — to the next line that has code.
    """
    kind: str                      # "blocking" | "role" | "ordering" | "lockorder"
    tag: str
    reason: str
    file: str
    line: int                      # the code line the waiver applies to
    comment_line: int


@dataclass
class Violation:
    rule: str
    file: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Program:
    """Whole-program view handed to the rules."""
    functions: Dict[str, Function] = field(default_factory=dict)   # by qname
    by_name: Dict[str, List[Function]] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    waivers: List[Waiver] = field(default_factory=list)
    files: Dict[str, str] = field(default_factory=dict)            # rel -> text

    def add_function(self, fn: Function) -> None:
        existing = self.functions.get(fn.qname)
        if existing is not None:
            # Merge a declaration and a definition (annotations can sit on
            # either); the definition's body wins.
            if fn.has_definition and not existing.has_definition:
                fn.role = fn.role or existing.role
                fn.blocking = fn.blocking or existing.blocking
                self._replace(existing, fn)
            else:
                existing.role = existing.role or fn.role
                existing.blocking = existing.blocking or fn.blocking
            return
        self.functions[fn.qname] = fn
        self.by_name.setdefault(fn.name, []).append(fn)

    def _replace(self, old: Function, new: Function) -> None:
        self.functions[new.qname] = new
        lst = self.by_name.setdefault(new.name, [])
        self.by_name[new.name] = [new if f is old else f for f in lst]

    def derived_of(self, cls: str) -> Set[str]:
        """Transitive subclasses of `cls`."""
        out: Set[str] = set()
        frontier = [cls]
        while frontier:
            cur = frontier.pop()
            for name, info in self.classes.items():
                if cur in info.bases and name not in out:
                    out.add(name)
                    frontier.append(name)
        return out

    def base_chain(self, cls: str) -> List[str]:
        """`cls` followed by its transitive base classes."""
        out: List[str] = []
        frontier = [cls]
        while frontier:
            cur = frontier.pop()
            if cur in out:
                continue
            out.append(cur)
            info = self.classes.get(cur)
            if info is not None:
                frontier.extend(info.bases)
        return out

    def waiver_for(self, kind: str, file: str, line: int) -> Optional[Waiver]:
        for w in self.waivers:
            if w.kind == kind and w.file == file and w.line == line:
                return w
        return None
