"""hfverify's canonical text frontend.

Parses C++ sources with a purpose-built scanner (no compiler needed) into the
`model.Program` the rules consume: classes with their base lists and fields,
functions with their role annotations and bodies, call sites with receiver
hints, `MutexLock` acquisitions, blocking primitives, and waiver comments.

It is deliberately not a full C++ parser. It understands the subset this
codebase (and the fixture corpus) is written in — declarations, member and
free function definitions, constructor init lists, template prefixes — and
skips what it cannot classify rather than failing. The libclang frontend
(`clang_frontend.py`) produces the same model from a real AST where libclang
is installed; CI runs both, local runs need only this one.
"""

import os
import re
from typing import List, Optional, Set, Tuple

from . import cpp_lexer as lx
from .model import (BLOCKING_MACRO, Call, ClassInfo, Field, Function,
                    LockAcquisition, Program, ROLE_MACROS, Waiver)

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default", "return",
    "break", "continue", "goto", "sizeof", "alignof", "decltype", "noexcept",
    "new", "delete", "throw", "try", "catch", "static_cast", "const_cast",
    "dynamic_cast", "reinterpret_cast", "co_await", "co_return", "co_yield",
    "this",
}
TYPE_NOISE = {
    "const", "constexpr", "static", "mutable", "inline", "volatile",
    "unsigned", "signed", "long", "short", "int", "char", "bool", "void",
    "float", "double", "auto", "std", "struct", "class", "enum", "typename",
    "explicit", "virtual", "friend", "extern", "register", "thread_local",
    "override", "final", "noexcept",
}
SKIP_TO_SEMI = {"using", "typedef", "static_assert", "friend", "extern",
                "goto"}
_FILE_IO_CALLS = {"fopen", "freopen", "fwrite", "fread", "fflush", "fclose",
                  "fseek", "ftell", "fgetc", "fputc", "fputs", "fgets",
                  "rename", "remove"}
_FILE_IO_TYPES = {"ofstream", "ifstream", "fstream"}
_SLEEP_CALLS = {"sleep_for", "sleep_until"}
# Socket syscalls that park the calling thread until the kernel has news:
# connection handshakes, accept queues, readiness waits. Flagged on
# event-loop paths like sleeps are — an event loop that blocks in connect()
# freezes every connection it multiplexes (the net/tcp.cpp lock-held-connect
# bug, found the hard way). Non-blocking uses (O_NONBLOCK sockets, the
# loop's own bounded epoll_wait) carry allow-blocking waivers naming the
# bound.
_SOCKET_WAIT_CALLS = {"connect", "accept", "accept4", "poll", "select",
                      "epoll_wait", "epoll_pwait"}

_WAIVER_RE = re.compile(
    r"hfverify:\s*allow-(blocking|role|ordering|lockorder)"
    r"\(([^)]*)\)\s*:?\s*(.*)")


def _is_macro(tok: lx.Token) -> bool:
    return tok.kind == lx.ID and tok.text.startswith("HF_")


class FileParser:
    def __init__(self, rel: str, text: str, program: Program) -> None:
        self.rel = rel
        self.program = program
        self.tokens, self.comments = lx.lex(text)
        self._code_lines = {t.line for t in self.tokens}
        self._collect_waivers()

    # -- waivers ------------------------------------------------------------
    def _collect_waivers(self) -> None:
        for line, body in self.comments:
            m = _WAIVER_RE.search(body)
            if not m:
                continue
            target = line
            if line not in self._code_lines:
                # Comment stands alone: applies to the next line with code.
                later = [ln for ln in self._code_lines if ln > line]
                if later:
                    target = min(later)
            self.program.waivers.append(Waiver(
                kind=m.group(1), tag=m.group(2).strip(),
                reason=m.group(3).strip(), file=self.rel, line=target,
                comment_line=line))

    # -- declaration scopes -------------------------------------------------
    def parse(self) -> None:
        self._parse_scope(0, len(self.tokens), None)

    def _skip_template_prefix(self, i: int, end: int) -> int:
        if i < end and self.tokens[i].text == "template":
            i += 1
            if i < end and self.tokens[i].text == "<":
                depth = 0
                while i < end:
                    t = self.tokens[i].text
                    if t == "<":
                        depth += 1
                    elif t == ">":
                        depth -= 1
                        if depth == 0:
                            return i + 1
                    elif t == ">>":
                        depth -= 2
                        if depth <= 0:
                            return i + 1
                    i += 1
        return i

    def _parse_scope(self, i: int, end: int, cls: Optional[str]) -> None:
        toks = self.tokens
        while i < end:
            t = toks[i]
            if t.text == ";":
                i += 1
                continue
            if t.text in ("public", "private", "protected") and \
                    i + 1 < end and toks[i + 1].text == ":":
                i += 2
                continue
            if t.text == "template":
                j = self._skip_template_prefix(i, end)
                if j > i:
                    i = j
                    continue
            if t.text == "namespace":
                i += 1
                while i < end and toks[i].text != "{" and toks[i].text != ";":
                    i += 1
                if i < end and toks[i].text == "{":
                    close = lx.match_forward(toks, i, "{", "}")
                    self._parse_scope(i + 1, close, cls)
                    i = close + 1
                else:
                    i += 1
                continue
            if t.text == "enum":
                while i < end and toks[i].text not in ("{", ";"):
                    i += 1
                if i < end and toks[i].text == "{":
                    i = lx.match_forward(toks, i, "{", "}") + 1
                continue
            if t.text in SKIP_TO_SEMI:
                while i < end and toks[i].text != ";":
                    if toks[i].text == "{":
                        i = lx.match_forward(toks, i, "{", "}")
                    i += 1
                continue
            if t.text in ("class", "struct") and self._looks_like_class(i, end):
                i = self._parse_class(i, end)
                continue
            i = self._parse_declaration(i, end, cls)

    def _looks_like_class(self, i: int, end: int) -> bool:
        """True for a class *definition* (reaches `{` before `;` or `(`)."""
        j = i + 1
        while j < end:
            t = self.tokens[j].text
            if t == "{":
                return True
            if t in (";", "(", "="):
                return False
            j += 1
        return False

    def _parse_class(self, i: int, end: int) -> int:
        toks = self.tokens
        line = toks[i].line
        i += 1
        # Skip attribute-like macros (HF_CAPABILITY("mutex")), alignas, [[..]].
        name = None
        while i < end and toks[i].text != "{":
            t = toks[i]
            if t.kind == lx.ID and i + 1 < end and toks[i + 1].text == "(":
                i = lx.match_forward(toks, i + 1, "(", ")") + 1
                continue
            if t.kind == lx.ID and t.text not in ("final",):
                name = t.text
                i += 1
                break
            i += 1
        bases: List[str] = []
        while i < end and toks[i].text != "{":
            if toks[i].text == ":":
                i += 1
                while i < end and toks[i].text != "{":
                    tk = toks[i]
                    if tk.kind == lx.ID and tk.text not in (
                            "public", "protected", "private", "virtual",
                            "std"):
                        # Base name: last id of a possibly qualified name,
                        # before any template args.
                        if i + 1 < end and toks[i + 1].text == "::":
                            i += 2
                            continue
                        bases.append(tk.text)
                        # Skip template argument list if present.
                        if i + 1 < end and toks[i + 1].text == "<":
                            depth = 0
                            while i + 1 < end:
                                i += 1
                                if toks[i].text == "<":
                                    depth += 1
                                elif toks[i].text == ">":
                                    depth -= 1
                                    if depth == 0:
                                        break
                    i += 1
                break
            i += 1
        if i >= end or toks[i].text != "{":
            return i + 1
        close = lx.match_forward(toks, i, "{", "}")
        if name is not None:
            info = self.program.classes.setdefault(name, ClassInfo(name=name))
            info.bases = sorted(set(info.bases) | set(bases))
            info.file, info.line = self.rel, line
            self._parse_scope(i + 1, close, name)
        return close + 1

    # -- declarations and definitions ---------------------------------------
    def _parse_declaration(self, i: int, end: int, cls: Optional[str]) -> int:
        """Parse one declaration starting at i; returns the next index."""
        toks = self.tokens
        decl_start = i
        paren_open = paren_close = None
        top_eq = None
        while i < end:
            t = toks[i].text
            if t == "(" and paren_open is None:
                if i > decl_start and toks[i - 1].kind == lx.ID and \
                        not _is_macro(toks[i - 1]):
                    paren_open = i
                    paren_close = lx.match_forward(toks, i, "(", ")")
                    i = paren_close + 1
                    continue
                i = lx.match_forward(toks, i, "(", ")") + 1
                continue
            if t == "(":
                i = lx.match_forward(toks, i, "(", ")") + 1
                continue
            if t == "[":
                i = lx.match_forward(toks, i, "[", "]") + 1
                continue
            if t == "=" and top_eq is None:
                top_eq = i
                i += 1
                continue
            if t == ";":
                self._finish_declaration(decl_start, i, paren_open,
                                         paren_close, top_eq, None, cls)
                return i + 1
            if t == "{":
                body_close = lx.match_forward(toks, i, "{", "}")
                is_fn = (paren_open is not None and top_eq is None)
                if is_fn:
                    self._finish_declaration(decl_start, i, paren_open,
                                             paren_close, top_eq,
                                             (i, body_close), cls)
                    # `void f() {}` needs no trailing `;`.
                    return body_close + 1
                # Brace initializer: keep scanning for the `;`.
                i = body_close + 1
                continue
            i += 1
        return end

    def _finish_declaration(self, start: int, stop: int,
                            paren_open: Optional[int],
                            paren_close: Optional[int],
                            top_eq: Optional[int],
                            body: Optional[Tuple[int, int]],
                            cls: Optional[str]) -> None:
        toks = self.tokens
        decl = toks[start:stop]
        role, blocking = self._annotations(decl)
        if paren_open is not None and (top_eq is None or top_eq > paren_open):
            # Function declaration or definition.
            name_toks = self._name_before(paren_open)
            if not name_toks:
                return
            name = name_toks[-1]
            qual: Optional[str] = cls
            if len(name_toks) >= 2:
                qual = name_toks[-2]
            qname = f"{qual}::{name}" if qual else name
            fn = Function(qname=qname, name=name, cls=qual, file=self.rel,
                          line=toks[start].line, role=role, blocking=blocking,
                          params=self._params(paren_open, paren_close),
                          has_definition=body is not None)
            if body is not None:
                fn.body_tokens = toks[body[0] + 1:body[1]]
                self._scan_body(fn)
            self.program.add_function(fn)
            return
        if cls is None:
            return
        # Field declaration at class scope.
        field = self._field_from(decl, role)
        if field is not None:
            field.cls = cls
            field.file = self.rel
            self.program.classes.setdefault(
                cls, ClassInfo(name=cls)).fields[field.name] = field

    def _annotations(self, decl: List[lx.Token]) -> Tuple[Optional[str], bool]:
        role = None
        blocking = False
        for t in decl:
            if t.kind != lx.ID:
                continue
            if t.text in ROLE_MACROS:
                role = ROLE_MACROS[t.text]
            elif t.text == BLOCKING_MACRO:
                blocking = True
        return role, blocking

    def _name_before(self, paren_open: int) -> List[str]:
        """Identifier chain directly before `(`: ["Cls", "name"] or ["name"]."""
        toks = self.tokens
        out: List[str] = []
        i = paren_open - 1
        if i >= 0 and toks[i].kind == lx.ID:
            out.append(toks[i].text)
            i -= 1
            if i >= 0 and toks[i].text == "~":
                out[-1] = "~" + out[-1]
                i -= 1
            while i - 1 >= 0 and toks[i].text == "::" and \
                    toks[i - 1].kind == lx.ID:
                out.append(toks[i - 1].text)
                i -= 2
        out.reverse()
        return out

    def _params(self, paren_open: Optional[int],
                paren_close: Optional[int]) -> List[Tuple[str, str]]:
        if paren_open is None or paren_close is None:
            return []
        toks = self.tokens[paren_open + 1:paren_close]
        params: List[Tuple[str, str]] = []
        depth = 0
        group: List[lx.Token] = []
        for t in toks + [lx.Token(lx.PUNCT, ",", 0)]:
            if t.text in ("(", "<", "[", "{"):
                depth += 1
            elif t.text in (")", ">", "]", "}"):
                depth -= 1
            if t.text == "," and depth <= 0:
                ids = [g.text for g in group if g.kind == lx.ID]
                eq = next((k for k, g in enumerate(group) if g.text == "="),
                          None)
                if eq is not None:
                    ids = [g.text for g in group[:eq] if g.kind == lx.ID]
                if len(ids) >= 2:
                    params.append((" ".join(ids[:-1]), ids[-1]))
                elif len(ids) == 1:
                    params.append((ids[0], ""))
                group = []
            else:
                group.append(t)
        return params

    def _field_from(self, decl: List[lx.Token],
                    role: Optional[str]) -> Optional[Field]:
        # Drop everything from a top-level `=` (default member init).
        depth = 0
        cut = len(decl)
        for k, t in enumerate(decl):
            if t.text in ("(", "[", "{", "<"):
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                depth -= 1
            elif t.text == "=" and depth <= 0:
                cut = k
                break
        toks = decl[:cut]
        # Drop trailing annotation-macro calls: HF_GUARDED_BY(mu_) etc.
        out: List[lx.Token] = []
        k = 0
        while k < len(toks):
            t = toks[k]
            if _is_macro(t) and k + 1 < len(toks) and toks[k + 1].text == "(":
                close = 1
                j = k + 2
                while j < len(toks) and close > 0:
                    if toks[j].text == "(":
                        close += 1
                    elif toks[j].text == ")":
                        close -= 1
                    j += 1
                k = j
                continue
            if _is_macro(t):
                k += 1
                continue
            out.append(t)
            k += 1
        ids = [t for t in out if t.kind == lx.ID and t.text not in TYPE_NOISE]
        if len(ids) < 2:
            return None
        name = ids[-1].text
        type_ids = {t.text for t in ids[:-1]}
        return Field(name=name, cls="", type_ids=type_ids, role=role,
                     line=ids[-1].line)

    # -- function bodies ----------------------------------------------------
    def _scan_body(self, fn: Function) -> None:
        toks = fn.body_tokens
        depth = 0
        for i, t in enumerate(toks):
            if t.text == "{":
                depth += 1
                continue
            if t.text == "}":
                depth -= 1
                continue
            if t.kind != lx.ID:
                continue
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if t.text == "MutexLock" and i + 2 < len(toks) and \
                    toks[i + 1].kind == lx.ID and toks[i + 2].text == "(":
                close = lx.match_forward(toks, i + 2, "(", ")")
                expr = tuple(x.text for x in toks[i + 3:close])
                fn.locks.append(LockAcquisition(
                    expr_tokens=expr, line=t.line, depth=depth,
                    token_index=i))
                continue
            if t.text in _FILE_IO_TYPES:
                fn.blocking_ops.append(("file-io", t.line))
                continue
            if nxt != "(" or t.text in KEYWORDS or t.text in TYPE_NOISE:
                continue
            prev = toks[i - 1] if i > 0 else None
            if prev is not None and (prev.kind == lx.ID or
                                     prev.text in (">", "*", "&", "~")):
                continue  # declarator (`MutexLock lock(...)`, `T x(...)`)
            receiver = qualifier = None
            if prev is not None and prev.text in (".", "->"):
                back = toks[i - 2] if i >= 2 else None
                if back is not None and back.kind == lx.ID:
                    receiver = back.text
                elif back is not None and back.text in (")", "]"):
                    receiver = "<expr>"
            elif prev is not None and prev.text == "::":
                back = toks[i - 2] if i >= 2 else None
                if back is not None and back.kind == lx.ID:
                    qualifier = back.text
                else:
                    qualifier = "::"  # `::shutdown(fd, ...)`: global/libc
            if t.text in _SLEEP_CALLS and qualifier == "this_thread":
                fn.blocking_ops.append(("sleep", t.line))
                continue
            if t.text in _FILE_IO_CALLS and qualifier in (None, "std"):
                fn.blocking_ops.append(("file-io", t.line))
                continue
            if t.text in _SOCKET_WAIT_CALLS and qualifier == "::":
                fn.blocking_ops.append(("socket-wait", t.line))
                continue
            if qualifier == "std":
                continue
            fn.calls.append(Call(name=t.text, qualifier=qualifier,
                                 receiver=receiver, line=t.line,
                                 token_index=i))


def parse_file(program: Program, rel: str, text: str) -> None:
    program.files[rel] = text
    FileParser(rel, text, program).parse()


def parse_tree(root: str, rel_dirs, extensions, exclude_dirs=()) -> Program:
    program = Program()
    for rel_dir in rel_dirs:
        top = os.path.join(root, rel_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(
                d for d in dirnames
                if os.path.relpath(os.path.join(dirpath, d), root)
                not in exclude_dirs)
            for name in sorted(filenames):
                if not name.endswith(tuple(extensions)):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                with open(path, encoding="utf-8", errors="replace") as f:
                    parse_file(program, rel, f.read())
    return program
