#!/usr/bin/env python3
"""CI gate for the epoll transport's connection scaling (DESIGN.md §17).

Reads a BENCH_epoll.json produced by bench/bench_epoll and fails unless the
epoll backend, at every measured configuration of 100+ connections:

  * delivered every frame it was sent (no silent loss under load),
  * held a bounded fd count (at most --fd-slack fds beyond the ~2 per
    connection the deployment itself opens — i.e. no leak), and
  * sustained at least the threaded backend's 5-connection throughput
    (the floor from the PR that introduced the event loop: scaling out
    connections must not cost the baseline's single-digit performance).

The bench binary itself exits nonzero when any configuration loses frames,
so by the time this script runs a fresh artifact, delivery has usually
already been established — the check here also covers stale or hand-edited
artifacts.

Usage:
    check_bench_epoll.py BENCH_epoll.json [--min-conns 100] [--fd-slack 64]

Exit codes: 0 pass, 1 floor missed or row absent, 2 unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="BENCH_epoll.json to check")
    parser.add_argument("--min-conns", type=int, default=100,
                        help="connection floor for gated epoll rows "
                             "(default 100)")
    parser.add_argument("--fd-slack", type=int, default=64,
                        help="fds allowed beyond 2 per connection "
                             "(default 64)")
    args = parser.parse_args(argv)

    try:
        with open(args.json_path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {args.json_path}: {e}", file=sys.stderr)
        return 2

    records = data.get("records", [])
    rows = {r.get("config"): r for r in records}

    baseline = rows.get("threaded,conns=5")
    if baseline is None:
        print(f"error: no 'threaded,conns=5' record in {args.json_path} "
              f"(have: {sorted(rows)})", file=sys.stderr)
        return 1
    floor = baseline.get("mean", 0.0)

    gated = [r for r in records
             if r.get("config", "").startswith("epoll,")
             and r.get("counters", {}).get("conns", 0) >= args.min_conns]
    if not gated:
        print(f"error: no epoll record with conns >= {args.min_conns} in "
              f"{args.json_path}", file=sys.stderr)
        return 1

    ok = True
    for row in gated:
        config = row["config"]
        counters = row.get("counters", {})
        conns = counters.get("conns", 0)
        delivered = counters.get("delivered", 0)
        expected = counters.get("expected", -1)
        fds = counters.get("fds", 0)
        fd_ceiling = 2 * conns + args.fd_slack
        rate = row.get("mean", 0.0)
        print(f"{config}: {rate:.0f} msgs/s (floor {floor:.0f}), "
              f"fds {fds:.0f} (ceiling {fd_ceiling:.0f}), "
              f"delivered {delivered:.0f}/{expected:.0f}")
        if delivered != expected:
            print(f"FAIL: {config} lost frames under load", file=sys.stderr)
            ok = False
        if fds > fd_ceiling:
            print(f"FAIL: {config} holds {fds:.0f} fds > ceiling "
                  f"{fd_ceiling:.0f} — the transport is leaking descriptors",
                  file=sys.stderr)
            ok = False
        if rate < floor:
            print(f"FAIL: {config} sustains {rate:.0f} msgs/s < the threaded "
                  f"backend's 5-connection floor {floor:.0f}", file=sys.stderr)
            ok = False

    if not ok:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
