#!/usr/bin/env python3
"""CI gate for availability under a primary kill (DESIGN.md §18).

Reads a BENCH_availability.json produced by bench/bench_availability and
fails unless, in every measured cell (backend × detector × replication):

  * **zero wrong results, ever** — a query during the kill window is
    either exact or a duplicate-free subset flagged `partial`; a cell
    with `wrong > 0` fails regardless of its success rate, and so does
    `failed > 0` (a hung or errored query);

and additionally, in every *replicated* cell:

  * **--min-success of queries completed usefully** — exact or honestly
    partial, across the whole workload (healthy, dead, and revived
    phases together; default 0.99);
  * **failover actually served** — at least one exact answer arrived
    while the primary was still dead (`failovers > 0` and a positive
    `failover_ms`; -1 means no exact answer during the dead window), so
    the success rate can't be met by partials alone.

The control cells (replication off) are the contrast, not the product:
they must stay honest (zero wrong, zero hung) but are exempt from the
success floor — without a replica, every dead-window query is partial.

Usage:
    check_bench_availability.py BENCH_availability.json [--min-success 0.99]

Exit codes: 0 pass, 1 floor missed or row absent, 2 unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="BENCH_availability.json to check")
    parser.add_argument("--min-success", type=float, default=0.99,
                        help="minimum (exact+partial)/attempted in every "
                             "replicated cell (default 0.99)")
    args = parser.parse_args(argv)

    try:
        with open(args.json_path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {args.json_path}: {e}", file=sys.stderr)
        return 2

    records = data.get("records", [])
    replicated = [r for r in records
                  if r.get("counters", {}).get("replicated", 0) > 0]
    if not replicated:
        print(f"error: no replicated cell in {args.json_path} "
              f"(have: {sorted(r.get('config', '?') for r in records)})",
              file=sys.stderr)
        return 1

    ok = True
    for row in records:
        config = row.get("config", "?")
        c = row.get("counters", {})
        attempted = c.get("attempted", 0)
        wrong = c.get("wrong", 0)
        failed = c.get("failed", 0)
        rate = c.get("success_rate", 0.0)
        is_replicated = c.get("replicated", 0) > 0
        print(f"{config}: attempted {attempted:.0f}, "
              f"success {rate:.4f}, wrong {wrong:.0f}, failed {failed:.0f}, "
              f"failover {c.get('failover_ms', 0):.1f}ms, "
              f"revived {c.get('revived_ms', 0):.1f}ms")
        if attempted <= 0:
            print(f"FAIL: {config} attempted no queries", file=sys.stderr)
            ok = False
            continue
        if wrong > 0:
            print(f"FAIL: {config} returned {wrong:.0f} wrong result(s) — "
                  f"a failed-over answer must be exact or flagged partial, "
                  f"never silently wrong", file=sys.stderr)
            ok = False
        if failed > 0:
            print(f"FAIL: {config} hung or errored {failed:.0f} query(ies)",
                  file=sys.stderr)
            ok = False
        if not is_replicated:
            continue
        if rate < args.min_success:
            print(f"FAIL: {config} success rate {rate:.4f} < floor "
                  f"{args.min_success}", file=sys.stderr)
            ok = False
        if c.get("failovers", 0) <= 0:
            print(f"FAIL: {config} never routed a query to the replica — "
                  f"the kill was not actually survived by failover",
                  file=sys.stderr)
            ok = False
        if c.get("failover_ms", -1) <= 0:
            print(f"FAIL: {config} served no exact answer while the "
                  f"primary was dead", file=sys.stderr)
            ok = False

    if not ok:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
