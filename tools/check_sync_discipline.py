#!/usr/bin/env python3
"""Lock-discipline lint: raw standard sync primitives are banned outside
src/common/sync.hpp, and ad-hoc atomic counters outside src/common/metrics.hpp.

Every mutex / lock / condition variable in HyperFile must go through the
thread-safety-annotated wrappers in src/common/sync.hpp (Mutex, MutexLock,
CondVar) so Clang's -Wthread-safety can check the locking protocol. This
script fails if any other C++ file names the raw primitives or includes
their headers directly. Comments are stripped before matching, so prose
mentions ("this used to be a std::mutex") stay legal.

Additionally, non-bool `std::atomic` in src/ must live in one of the
sanctioned homes:
  * src/common/sync.hpp — the annotated wrappers plus the lock-free
    primitives built on raw atomics (AtomicMarkMap, the parallel drain's
    mark table). Engine code wanting lock-free state uses those classes, it
    does not roll its own atomics.
  * src/common/metrics.hpp — a new cross-thread counter belongs in a
    Counter/Gauge/Histogram, where it shows up in every dump, BENCH JSON,
    and CI artifact — not in a private field nobody can read out.
  * src/common/logging.hpp — the log-level threshold (configuration, not a
    metric; logging sits below the registry in the include order).
`std::atomic<bool>` lifecycle flags (stop/running) stay legal everywhere.
Explicit `std::memory_order` arguments are confined to the same sanctioned
files: relaxed/acquire/release reasoning lives next to the primitive whose
invariants justify it (see the AtomicMarkMap comment block), never inline in
engine code.

The policy data (banned tokens, sanctioned files, scan roots) is shared
with the hfverify whole-program analyzer: both import it from
tools/hfverify/allowlist.py, so the two checkers cannot drift apart.

Usage: tools/check_sync_discipline.py [repo-root]
       tools/check_sync_discipline.py --self-test
Exit status: 0 clean, 1 violations found (or self-test failure).
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from hfverify.allowlist import (  # noqa: E402
    ATOMIC_ALLOWED, ATOMIC_BANNED_TOKENS, ATOMIC_SCAN_DIR, CPP_EXTENSIONS,
    EXCLUDE_DIRS, ORDER_BANNED_TOKENS, SCAN_DIRS, SYNC_ALLOWED,
    SYNC_BANNED_TOKENS)

ALLOWED = SYNC_ALLOWED
BANNED = [re.compile(p) for p in SYNC_BANNED_TOKENS]
ATOMIC_BANNED = [re.compile(p) for p in ATOMIC_BANNED_TOKENS]
ORDER_BANNED = [re.compile(p) for p in ORDER_BANNED_TOKENS]

LINE_COMMENT = re.compile(r"//.*$")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)


def strip_comments(text: str) -> str:
    """Remove comments, preserving line structure for line numbers."""
    def blank_lines(match: "re.Match[str]") -> str:
        return "\n" * match.group(0).count("\n")

    text = BLOCK_COMMENT.sub(blank_lines, text)
    return "\n".join(LINE_COMMENT.sub("", line) for line in text.splitlines())


def check_code(rel: str, text: str, sync_banned: bool,
               atomics_banned: bool) -> list:
    """Lint one file's contents; returns (rel, line, token, why) tuples."""
    code = strip_comments(text)
    patterns = []
    if sync_banned:
        patterns += [(p, "use common/sync.hpp primitives") for p in BANNED]
    if atomics_banned:
        patterns += [(p, "counters belong in common/metrics.hpp, lock-free "
                         "state in common/sync.hpp") for p in ATOMIC_BANNED]
        patterns += [(p, "memory-order reasoning lives with the sanctioned "
                         "primitives in common/sync.hpp") for p in ORDER_BANNED]
    violations = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        for pattern, why in patterns:
            match = pattern.search(line)
            if match:
                violations.append((rel, lineno, match.group(0), why))
    return violations


def check_file(root: str, rel: str, sync_banned: bool, atomics_banned: bool) -> list:
    with open(os.path.join(root, rel), encoding="utf-8", errors="replace") as f:
        return check_code(rel, f.read(), sync_banned, atomics_banned)


def excluded(rel: str) -> bool:
    """Fixture corpora carry seeded violations; no tree lint scans them."""
    return any(rel == d or rel.startswith(d + os.sep) for d in EXCLUDE_DIRS)


def rules_for(rel: str, scan_dir: str):
    """(sync_banned, atomics_banned) for a path relative to the repo root."""
    sync_banned = rel not in ALLOWED
    atomics_banned = scan_dir == ATOMIC_SCAN_DIR and rel not in ATOMIC_ALLOWED
    return sync_banned, atomics_banned


# Each case: (relative path, code, tokens expected to be flagged). The lint
# lints itself before it lints the tree — a rule that silently stopped
# matching would otherwise fail open.
SELF_TEST_CASES = [
    ("src/engine/x.cpp", "std::mutex mu;", ["std::mutex"]),
    ("src/engine/x.cpp", "#include <mutex>\n", ["#include <mutex>"]),
    ("src/engine/x.cpp", "// std::mutex in prose\n/* std::lock_guard */\n", []),
    ("src/engine/x.cpp", "std::atomic<int> n;", ["std::atomic"]),
    ("src/engine/x.cpp", "std::atomic<bool> stop{false};", []),
    ("src/engine/x.cpp", "std::atomic_flag f;", ["std::atomic_flag"]),
    ("src/engine/x.cpp",
     "x.load(std::memory_order_relaxed);", ["std::memory_order_relaxed"]),
    ("src/engine/x.cpp",
     "y.store(1, std::memory_order::release);", ["std::memory_order"]),
    # The sanctioned homes keep their exemptions (but never for mutexes
    # outside sync.hpp).
    ("src/common/sync.hpp",
     "std::mutex mu;\nstd::atomic<std::uint64_t> w;\n"
     "w.load(std::memory_order_acquire);", []),
    ("src/common/metrics.hpp", "std::atomic<std::uint64_t> v_{0};", []),
    ("src/common/metrics.hpp", "std::mutex mu;", ["std::mutex"]),
    # Atomics rules apply to src/ only; the mutex family is banned everywhere.
    ("tests/x.cpp", "std::atomic<int> hits{0};", []),
    ("tests/x.cpp", "std::lock_guard<std::mutex> l(mu);",
     ["std::lock_guard", "std::mutex"]),
]


def self_test() -> int:
    failures = 0
    for rel, code, expected_tokens in SELF_TEST_CASES:
        rel = rel.replace("/", os.sep)
        scan_dir = rel.split(os.sep, 1)[0]
        sync_banned, atomics_banned = rules_for(rel, scan_dir)
        got = sorted(tok.strip() for _, _, tok, _ in
                     check_code(rel, code, sync_banned, atomics_banned))
        want = sorted(expected_tokens)
        if got != want:
            failures += 1
            print(f"self-test FAIL: {rel!r} {code!r}\n"
                  f"  expected {want}\n  got      {got}")
    # The hfverify fixture corpus (seeded violations) must stay out of scope.
    fixture_rel = os.path.join("tests", "fixtures", "hfverify", "x.cpp")
    if not excluded(fixture_rel):
        failures += 1
        print(f"self-test FAIL: {fixture_rel!r} should be excluded")
    if excluded(os.path.join("tests", "test_wire.cpp")):
        failures += 1
        print("self-test FAIL: tests/test_wire.cpp should not be excluded")
    if failures:
        print(f"{failures} self-test case(s) failed")
        return 1
    print(f"sync discipline self-test: {len(SELF_TEST_CASES) + 2} cases pass")
    return 0


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--self-test":
        return self_test()
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    violations = []
    for scan_dir in SCAN_DIRS:
        top = os.path.join(root, scan_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirnames, filenames in os.walk(top):
            for name in sorted(filenames):
                if not name.endswith(CPP_EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                if excluded(rel):
                    continue
                sync_banned, atomics_banned = rules_for(rel, scan_dir)
                if not sync_banned and not atomics_banned:
                    continue
                violations.extend(
                    check_file(root, rel, sync_banned, atomics_banned))

    if violations:
        print("sync discipline violations:")
        for rel, lineno, token, why in violations:
            print(f"  {rel}:{lineno}: raw `{token.strip()}` ({why})")
        print(f"{len(violations)} violation(s). Raw sync primitives live in "
              "src/common/sync.hpp only; non-bool std::atomic and explicit "
              "memory orders in src/ live in the sanctioned common/ headers "
              "only (see this script's docstring).")
        return 1
    print("sync discipline: clean (raw primitives only in src/common/sync.hpp; "
          "non-bool atomics and memory orders only in the sanctioned "
          "common/ headers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
