#!/usr/bin/env python3
"""Lock-discipline lint: raw standard sync primitives are banned outside
src/common/sync.hpp.

Every mutex / lock / condition variable in HyperFile must go through the
thread-safety-annotated wrappers in src/common/sync.hpp (Mutex, MutexLock,
CondVar) so Clang's -Wthread-safety can check the locking protocol. This
script fails if any other C++ file names the raw primitives or includes
their headers directly. Comments are stripped before matching, so prose
mentions ("this used to be a std::mutex") stay legal.

Usage: tools/check_sync_discipline.py [repo-root]
Exit status: 0 clean, 1 violations found.
"""

import os
import re
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples")
ALLOWED = {os.path.join("src", "common", "sync.hpp")}
CPP_EXTENSIONS = (".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h")

BANNED_TOKENS = [
    r"std\s*::\s*mutex\b",
    r"std\s*::\s*timed_mutex\b",
    r"std\s*::\s*recursive_mutex\b",
    r"std\s*::\s*recursive_timed_mutex\b",
    r"std\s*::\s*shared_mutex\b",
    r"std\s*::\s*shared_timed_mutex\b",
    r"std\s*::\s*condition_variable\b",
    r"std\s*::\s*condition_variable_any\b",
    r"std\s*::\s*lock_guard\b",
    r"std\s*::\s*unique_lock\b",
    r"std\s*::\s*scoped_lock\b",
    r"std\s*::\s*shared_lock\b",
    r"#\s*include\s*<mutex>",
    r"#\s*include\s*<condition_variable>",
    r"#\s*include\s*<shared_mutex>",
]
BANNED = [re.compile(p) for p in BANNED_TOKENS]

LINE_COMMENT = re.compile(r"//.*$")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)


def strip_comments(text: str) -> str:
    """Remove comments, preserving line structure for line numbers."""
    def blank_lines(match: "re.Match[str]") -> str:
        return "\n" * match.group(0).count("\n")

    text = BLOCK_COMMENT.sub(blank_lines, text)
    return "\n".join(LINE_COMMENT.sub("", line) for line in text.splitlines())


def check_file(root: str, rel: str) -> list:
    with open(os.path.join(root, rel), encoding="utf-8", errors="replace") as f:
        code = strip_comments(f.read())
    violations = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        for pattern in BANNED:
            match = pattern.search(line)
            if match:
                violations.append((rel, lineno, match.group(0)))
    return violations


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    violations = []
    for scan_dir in SCAN_DIRS:
        top = os.path.join(root, scan_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirnames, filenames in os.walk(top):
            for name in sorted(filenames):
                if not name.endswith(CPP_EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                if rel in ALLOWED:
                    continue
                violations.extend(check_file(root, rel))

    if violations:
        print("sync discipline violations (use common/sync.hpp primitives):")
        for rel, lineno, token in violations:
            print(f"  {rel}:{lineno}: raw `{token.strip()}`")
        print(f"{len(violations)} violation(s). Only src/common/sync.hpp may "
              "name raw standard sync primitives.")
        return 1
    print("sync discipline: clean (raw primitives only in src/common/sync.hpp)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
