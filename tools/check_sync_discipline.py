#!/usr/bin/env python3
"""Lock-discipline lint: raw standard sync primitives are banned outside
src/common/sync.hpp, and ad-hoc atomic counters outside src/common/metrics.hpp.

Every mutex / lock / condition variable in HyperFile must go through the
thread-safety-annotated wrappers in src/common/sync.hpp (Mutex, MutexLock,
CondVar) so Clang's -Wthread-safety can check the locking protocol. This
script fails if any other C++ file names the raw primitives or includes
their headers directly. Comments are stripped before matching, so prose
mentions ("this used to be a std::mutex") stay legal.

Additionally, non-bool `std::atomic` in src/ must live in the metrics
registry (src/common/metrics.hpp): a new cross-thread counter belongs in a
Counter/Gauge/Histogram, where it shows up in every dump, BENCH JSON, and
CI artifact — not in a private field nobody can read out. `std::atomic<bool>`
lifecycle flags (stop/running) stay legal everywhere, as does the
log-level threshold in src/common/logging.hpp (configuration, not a metric;
logging sits below the registry in the include order).

Usage: tools/check_sync_discipline.py [repo-root]
Exit status: 0 clean, 1 violations found.
"""

import os
import re
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples")
ALLOWED = {os.path.join("src", "common", "sync.hpp")}
CPP_EXTENSIONS = (".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h")

BANNED_TOKENS = [
    r"std\s*::\s*mutex\b",
    r"std\s*::\s*timed_mutex\b",
    r"std\s*::\s*recursive_mutex\b",
    r"std\s*::\s*recursive_timed_mutex\b",
    r"std\s*::\s*shared_mutex\b",
    r"std\s*::\s*shared_timed_mutex\b",
    r"std\s*::\s*condition_variable\b",
    r"std\s*::\s*condition_variable_any\b",
    r"std\s*::\s*lock_guard\b",
    r"std\s*::\s*unique_lock\b",
    r"std\s*::\s*scoped_lock\b",
    r"std\s*::\s*shared_lock\b",
    r"#\s*include\s*<mutex>",
    r"#\s*include\s*<condition_variable>",
    r"#\s*include\s*<shared_mutex>",
]
BANNED = [re.compile(p) for p in BANNED_TOKENS]

# Non-bool std::atomic: only the metrics instruments (and sync.hpp, should
# it ever need one) may declare them; see src/common/metrics.hpp. The
# negative lookahead keeps std::atomic<bool> stop-flags legal.
ATOMIC_SCAN_DIR = "src"
ATOMIC_ALLOWED = {
    os.path.join("src", "common", "sync.hpp"),
    os.path.join("src", "common", "metrics.hpp"),
    # Log-level threshold: configuration read on every HF_DEBUG, not a
    # metric, and logging must not depend on the registry.
    os.path.join("src", "common", "logging.hpp"),
}
ATOMIC_BANNED = [
    re.compile(r"std\s*::\s*atomic\b(?!\s*<\s*bool\s*>)"),
    re.compile(r"std\s*::\s*atomic_flag\b"),
]

LINE_COMMENT = re.compile(r"//.*$")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)


def strip_comments(text: str) -> str:
    """Remove comments, preserving line structure for line numbers."""
    def blank_lines(match: "re.Match[str]") -> str:
        return "\n" * match.group(0).count("\n")

    text = BLOCK_COMMENT.sub(blank_lines, text)
    return "\n".join(LINE_COMMENT.sub("", line) for line in text.splitlines())


def check_file(root: str, rel: str, sync_banned: bool, atomics_banned: bool) -> list:
    with open(os.path.join(root, rel), encoding="utf-8", errors="replace") as f:
        code = strip_comments(f.read())
    patterns = []
    if sync_banned:
        patterns += [(p, "use common/sync.hpp primitives") for p in BANNED]
    if atomics_banned:
        patterns += [(p, "counters belong in common/metrics.hpp")
                     for p in ATOMIC_BANNED]
    violations = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        for pattern, why in patterns:
            match = pattern.search(line)
            if match:
                violations.append((rel, lineno, match.group(0), why))
    return violations


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    violations = []
    for scan_dir in SCAN_DIRS:
        top = os.path.join(root, scan_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirnames, filenames in os.walk(top):
            for name in sorted(filenames):
                if not name.endswith(CPP_EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                sync_banned = rel not in ALLOWED
                atomics_banned = (scan_dir == ATOMIC_SCAN_DIR
                                  and rel not in ATOMIC_ALLOWED)
                if not sync_banned and not atomics_banned:
                    continue
                violations.extend(
                    check_file(root, rel, sync_banned, atomics_banned))

    if violations:
        print("sync discipline violations:")
        for rel, lineno, token, why in violations:
            print(f"  {rel}:{lineno}: raw `{token.strip()}` ({why})")
        print(f"{len(violations)} violation(s). Raw sync primitives live in "
              "src/common/sync.hpp only; non-bool std::atomic in src/ lives "
              "in src/common/metrics.hpp only.")
        return 1
    print("sync discipline: clean (raw primitives only in src/common/sync.hpp; "
          "non-bool atomics only in src/common/metrics.hpp)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
