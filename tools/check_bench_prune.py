#!/usr/bin/env python3
"""CI gate for summary pruning (DESIGN.md §16).

Reads a BENCH_summaries.json produced by bench/bench_summaries and fails
unless pruning cuts per-query wire messages by at least the floor on the
gated topology/selectivity — by default the tree workload at low
selectivity, the configuration the paper's workload model predicts is the
pruning sweet spot (subtrees are site-local, so most searches are
refutable from a peer summary alone).

The pruned mode's message count already includes the advert gossip, so the
reduction this gate enforces is net of the scheme's own overhead. The bench
binary itself exits nonzero if pruning changed any answer, so by the time
this script runs, correctness has already been established.

Usage:
    check_bench_prune.py BENCH_summaries.json [--min-reduction 0.30]
                         [--topology tree] [--selectivity low]

Exit codes: 0 pass, 1 floor missed or row absent, 2 unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="BENCH_summaries.json to check")
    parser.add_argument("--min-reduction", type=float, default=0.30,
                        help="message-reduction floor, 0..1 (default 0.30)")
    parser.add_argument("--topology", default="tree",
                        help="gated topology (default tree)")
    parser.add_argument("--selectivity", default="low",
                        help="gated selectivity (default low)")
    args = parser.parse_args(argv)

    try:
        with open(args.json_path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {args.json_path}: {e}", file=sys.stderr)
        return 2

    rows = {r.get("config"): r for r in data.get("records", [])}
    pair = {}
    for mode in ("off", "on"):
        config = f"{args.topology}/{args.selectivity}/{mode}"
        row = rows.get(config)
        if row is None:
            print(f"error: no record '{config}' in {args.json_path} "
                  f"(have: {sorted(rows)})", file=sys.stderr)
            return 1
        messages = row.get("counters", {}).get("messages")
        if messages is None:
            print(f"error: record '{config}' has no messages counter",
                  file=sys.stderr)
            return 1
        pair[mode] = messages

    if pair["off"] <= 0:
        print(f"error: baseline sent no messages ({pair['off']}); the "
              "workload never exercised the remote path", file=sys.stderr)
        return 1

    reduction = 1.0 - pair["on"] / pair["off"]
    print(f"{args.topology}/{args.selectivity}: messages/query "
          f"{pair['off']:.1f} -> {pair['on']:.1f} "
          f"(reduction {reduction:.1%}, floor {args.min_reduction:.0%})")
    if reduction < args.min_reduction:
        print(f"FAIL: {reduction:.1%} < {args.min_reduction:.0%} — summary "
              "pruning no longer pays for itself on the gated workload",
              file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
