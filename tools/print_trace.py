#!/usr/bin/env python3
"""Pretty-print a HyperFile query trace JSON (hfq --trace=FILE).

Usage:
    tools/print_trace.py trace.json            # tree view
    hfq cluster.conf --trace=/dev/stdout ... | tools/print_trace.py -

The trace records one span per engaged site. Each span's `path` is the
pointer-chase route that first engaged the site (originator first), and
`first_hop` its distance from the originator, so sorting spans by
(first_hop, path) reconstructs the fan-out tree of the distributed query.

Per-span durations (drain_us) are measured on each site's own monotonic
clock: they are comparable as durations but carry no global timeline, so
this tool never tries to align spans on a shared time axis (DESIGN.md §12).
"""
import json
import sys


def fmt_us(us):
    if us >= 1_000_000:
        return f"{us / 1e6:.2f}s"
    if us >= 1_000:
        return f"{us / 1e3:.2f}ms"
    return f"{us}us"


def print_trace(trace, out=sys.stdout):
    spans = sorted(trace.get("spans", []),
                   key=lambda s: (s.get("first_hop", 0), s.get("path", [])))
    qid = trace.get("query_id", "?")
    out.write(f"query {qid}: {len(spans)} site(s), "
              f"{fmt_us(trace.get('elapsed_us', 0))} client-observed\n")
    for s in spans:
        hop = s.get("first_hop", 0)
        indent = "  " * (hop + 1)
        path = "->".join(str(p) for p in s.get("path", [])) or "(origin)"
        out.write(f"{indent}site {s.get('site')}  [{path}]\n")
        out.write(f"{indent}  messages {s.get('messages', 0)}"
                  f"  duplicates {s.get('duplicates', 0)}"
                  f"  items {s.get('items', 0)}"
                  f"  forwarded {s.get('forwarded', 0)}"
                  f"  results {s.get('results', 0)}\n")
        line = (f"{indent}  drains {s.get('drains', 0)}"
                f" ({fmt_us(s.get('drain_us', 0))} local clock)"
                f"  retries {s.get('retries', 0)}")
        if s.get("suspicions", 0):
            line += f"  suspicions {s['suspicions']}"
        if s.get("pruned", 0):
            line += f"  pruned {s['pruned']}"
        if s.get("failovers", 0):
            line += f"  failovers {s['failovers']}"
        if s.get("replica_lag", 0):
            line += f"  replica_lag {s['replica_lag']}"
        out.write(line + "\n")
    total_dup = sum(s.get("duplicates", 0) for s in spans)
    total_retry = sum(s.get("retries", 0) for s in spans)
    total_suspect = sum(s.get("suspicions", 0) for s in spans)
    total_pruned = sum(s.get("pruned", 0) for s in spans)
    total_failover = sum(s.get("failovers", 0) for s in spans)
    total_lag = sum(s.get("replica_lag", 0) for s in spans)
    if total_dup or total_retry or total_suspect:
        out.write(f"  network friction: {total_dup} duplicate deliveries "
                  f"suppressed, {total_retry} send retries")
        if total_suspect:
            out.write(f", {total_suspect} peer suspicion(s) — the answer "
                      f"was cut short by failure detection")
        out.write("\n")
    if total_pruned:
        out.write(f"  fan-out pruning: {total_pruned} remote deref(s) "
                  f"skipped via peer summaries (exactness preserved — a "
                  f"summary only refutes, never guesses)\n")
    if total_failover:
        out.write(f"  failover: {total_failover} item(s) served from a hot "
                  f"standby's shadow store (DESIGN.md §18)")
        if total_lag:
            out.write(f"; {total_lag} of them from a shadow verifiably "
                      f"behind its primary's WAL tail — the reply was "
                      f"flagged partial")
        else:
            out.write(" with the replication watermark covering the "
                      "primary's known WAL tail (answer exact)")
        out.write("\n")


def main(argv):
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        sys.stderr.write(__doc__)
        return 2
    source = sys.stdin if argv[1] == "-" else open(argv[1])
    with source:
        trace = json.load(source)
    print_trace(trace)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
