#!/usr/bin/env python3
"""CI perf smoke for the parallel site drain (DESIGN.md §14).

Reads a BENCH_parallel_site.json produced by bench/bench_parallel_site and
fails if the current engine's in-process drain at the gated worker count does
not clear the speedup floor over the legacy serial baseline (the frozen
pre-overhaul engine measured live in the same binary, so the comparison
survives hardware changes between CI runners).

Usage:
    check_bench_speedup.py BENCH_parallel_site.json [--min-speedup 2.0]
                           [--workers 4] [--transport inproc]

Exit codes: 0 pass, 1 floor missed or row absent, 2 unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="BENCH_parallel_site.json to check")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="floor for speedup_vs_serial (default 2.0)")
    parser.add_argument("--workers", type=int, default=4,
                        help="gated worker count (default 4)")
    parser.add_argument("--transport", default="inproc",
                        help="gated transport (default inproc)")
    args = parser.parse_args(argv)

    try:
        with open(args.json_path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {args.json_path}: {e}", file=sys.stderr)
        return 2

    want = f"{args.transport},engine=current,workers={args.workers}"
    rows = {r.get("config"): r for r in data.get("records", [])}
    row = rows.get(want)
    if row is None:
        print(f"error: no record '{want}' in {args.json_path} "
              f"(have: {sorted(rows)})", file=sys.stderr)
        return 1

    counters = row.get("counters", {})
    speedup = counters.get("speedup_vs_serial")
    if speedup is None:
        print(f"error: record '{want}' has no speedup_vs_serial counter",
              file=sys.stderr)
        return 1

    hw = counters.get("hardware_threads", 0)
    print(f"{want}: speedup_vs_serial={speedup:.2f} "
          f"(floor {args.min_speedup:.2f}, hardware_threads={hw:.0f})")
    if speedup < args.min_speedup:
        print(f"FAIL: {speedup:.2f} < {args.min_speedup:.2f} — the parallel "
              "drain regressed against the legacy serial baseline",
              file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
